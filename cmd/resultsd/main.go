// Command resultsd serves the artifact store's query endpoints: it
// opens (or creates) a store, optionally ingests shard artifacts given
// as arguments, and either answers one query in-process (-query, for
// scripts and CI) or listens for HTTP (-listen).
//
// Typical flows:
//
//	# build a store from fleet shards and serve it
//	resultsd -store runs/store -listen :8321 runs/fleet/shard-*.json
//
//	# one-shot render against an existing store (no server)
//	resultsd -store runs/store -query '/v1/summary?group-by=channel'
//
// Endpoint catalog (GET unless noted): /healthz, /v1/keys, /v1/summary,
// /v1/csv, /v1/render, /v1/artifact, /v1/distributions, /v1/safety,
// /v1/trr, POST /v1/ingest. See DESIGN.md §11.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resultsd: ")
	var (
		storeDir = flag.String("store", "", "artifact store directory (empty = in-memory, useful only with ingest args + -query)")
		listen   = flag.String("listen", "", "HTTP listen address, e.g. :8321")
		oneShot  = flag.String("query", "", "answer one GET request path in-process and print the body, e.g. '/v1/summary?group-by=channel'")
		quiet    = flag.Bool("quiet", false, "suppress ingest logging")
	)
	flag.Parse()
	if *listen == "" && *oneShot == "" {
		log.Fatal("nothing to do: pass -listen ADDR to serve or -query PATH for a one-shot render")
	}

	st, err := hbmrh.OpenArtifactStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	for _, arg := range flag.Args() {
		rs, err := st.IngestFiles(arg)
		if err != nil {
			log.Fatal(err)
		}
		if *quiet {
			continue
		}
		for _, r := range rs {
			if r.Duplicate {
				log.Printf("already stored: %.12s (corpus %s)", r.Hash, r.Corpus)
			} else {
				log.Printf("ingested %.12s into corpus %s (gen %d, pending %d)", r.Hash, r.Corpus, r.Gen, r.Pending)
			}
		}
	}

	handler := hbmrh.NewQueryServer(st).Handler()

	if *oneShot != "" {
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, httptest.NewRequest(http.MethodGet, *oneShot, nil))
		os.Stdout.Write(w.Body.Bytes())
		if w.Code != http.StatusOK {
			log.Fatalf("%s: HTTP %d", *oneShot, w.Code)
		}
		if *listen == "" {
			return
		}
	}

	fmt.Fprintf(os.Stderr, "resultsd: serving %d corpus/corpora on %s\n", len(st.Corpora()), *listen)
	log.Fatal(http.ListenAndServe(*listen, handler))
}
