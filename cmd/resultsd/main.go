// Command resultsd serves the artifact store's query endpoints: it
// opens (or creates) a store, optionally ingests shard artifacts given
// as arguments, and either answers one query in-process (-query, for
// scripts and CI) or listens for HTTP (-listen).
//
// Typical flows:
//
//	# build a store from fleet shards and serve it
//	resultsd -store runs/store -listen :8321 runs/fleet/shard-*.json
//
//	# one-shot render against an existing store (no server)
//	resultsd -store runs/store -query '/v1/summary?group-by=channel'
//
// The server carries read/write/idle timeouts (a stuck or malicious
// client cannot pin a connection forever) and drains gracefully:
// SIGTERM/SIGINT stops accepting connections, in-flight requests get up
// to -drain to finish, then the process exits 0. A store opened with
// quarantined objects serves what it has and reports "degraded" on
// /healthz.
//
// Endpoint catalog (GET unless noted): /healthz, /v1/keys, /v1/summary,
// /v1/csv, /v1/render, /v1/artifact, /v1/distributions, /v1/safety,
// /v1/trr, POST /v1/ingest. See DESIGN.md §11.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	hbmrh "github.com/safari-repro/hbmrh"
	"github.com/safari-repro/hbmrh/internal/failpoint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resultsd: ")
	var (
		storeDir = flag.String("store", "", "artifact store directory (empty = in-memory, useful only with ingest args + -query)")
		listen   = flag.String("listen", "", "HTTP listen address, e.g. :8321")
		oneShot  = flag.String("query", "", "answer one GET request path in-process and print the body, e.g. '/v1/summary?group-by=channel'")
		quiet    = flag.Bool("quiet", false, "suppress ingest logging")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests on SIGTERM/SIGINT")
	)
	flag.Parse()
	if *listen == "" && *oneShot == "" {
		log.Fatal("nothing to do: pass -listen ADDR to serve or -query PATH for a one-shot render")
	}
	if err := failpoint.ArmFromEnv(); err != nil {
		log.Fatal(err)
	}

	st, err := hbmrh.OpenArtifactStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range st.Quarantined() {
		log.Printf("quarantined %s: %s", q.File, q.Reason)
	}
	if n := len(st.Quarantined()); n > 0 {
		log.Printf("store degraded: %d object(s) quarantined under objects/quarantine/ (re-ingest the shards to restore)", n)
	}
	for _, arg := range flag.Args() {
		rs, err := st.IngestFiles(arg)
		if err != nil {
			log.Fatal(err)
		}
		if *quiet {
			continue
		}
		for _, r := range rs {
			if r.Duplicate {
				log.Printf("already stored: %.12s (corpus %s)", r.Hash, r.Corpus)
			} else {
				log.Printf("ingested %.12s into corpus %s (gen %d, pending %d)", r.Hash, r.Corpus, r.Gen, r.Pending)
			}
		}
	}

	handler := hbmrh.NewQueryServer(st).Handler()

	if *oneShot != "" {
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, httptest.NewRequest(http.MethodGet, *oneShot, nil))
		os.Stdout.Write(w.Body.Bytes())
		if w.Code != http.StatusOK {
			log.Fatalf("%s: HTTP %d", *oneShot, w.Code)
		}
		if *listen == "" {
			return
		}
	}

	// A bare ListenAndServe has no timeouts: one client that never reads
	// its response (or trickles its request) holds a connection and its
	// handler goroutine forever. Generous bounds — renders are local and
	// fast, but /v1/artifact bodies can be large.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "resultsd: serving %d corpus/corpora on %s\n", len(st.Corpora()), *listen)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintf(os.Stderr, "resultsd: shutting down, draining in-flight requests (up to %s)\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
	}
}
