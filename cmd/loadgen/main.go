// Command loadgen is the latency-budgeted load harness for the query
// service's serving data plane. It drives the same handler resultsd
// serves — in-process, so the numbers measure the data plane (cache,
// render, variant selection), not the kernel's networking stack — with
// an OPEN-LOOP arrival process: requests are scheduled on a fixed
// timeline (-rps) before any response returns, and each latency is
// measured from the request's *scheduled* arrival, not from when a
// worker got around to sending it. A saturated server therefore shows
// its real queueing tail instead of the coordinated-omission mirage a
// closed-loop client produces.
//
// Three modes:
//
//	# load an existing store (e.g. the smoke store) at 2000 rps
//	loadgen -store .smoke/store -rps 2000 -requests 10000 \
//	        -endpoints '/v1/summary,/v1/csv' -gzip 0.3 -conditional 0.3
//
//	# synthesize a 32-shard corpus in memory and measure the hot path
//	loadgen -synthetic 32 -requests 50000 -json
//
//	# ingest-throughput benchmark: incremental merge vs full rebuild
//	loadgen -ingest-bench 256 -json
//
// Latencies land in an HDR-style log-bucketed histogram (32 linear
// sub-buckets per power of two, ≤3.2% relative error at any magnitude),
// merged across workers after the run; the report carries p50/p90/p99/
// p999/max/mean, per-class status counts, cache hit rate from the
// server's own counters, and 304/gzip accounting. With -rps 0 the
// harness degenerates to a closed loop (latency from send time), which
// is what the smoke gate uses for a deterministic request count.
//
// Acceptance gates (-min-hit-rate, -max-5xx, -max-4xx, -check-304) turn
// the harness into a CI check: any violated gate exits non-zero. See
// DESIGN.md §14 for the methodology and scripts/README.md for the JSON
// schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/safari-repro/hbmrh/internal/query"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		storeDir    = flag.String("store", "", "open an existing artifact store directory")
		synthetic   = flag.Int("synthetic", 0, "build an in-memory store from N synthetic multichip shards")
		ingestBench = flag.Int("ingest-bench", 0, "run the ingest-throughput benchmark over N shards (incremental vs full rebuild) and exit")
		rps         = flag.Float64("rps", 0, "open-loop arrival rate; 0 = closed loop (send as fast as workers allow)")
		requests    = flag.Int("requests", 10000, "total requests to issue")
		concurrency = flag.Int("concurrency", 8, "worker goroutines draining the arrival schedule")
		endpoints   = flag.String("endpoints", "/v1/summary,/v1/csv", "comma-separated GET paths to mix uniformly")
		gzipFrac    = flag.Float64("gzip", 0, "fraction of requests sent with Accept-Encoding: gzip")
		condFrac    = flag.Float64("conditional", 0, "fraction of requests revalidating with If-None-Match (last ETag seen per worker+endpoint)")
		seed        = flag.Int64("seed", 1, "seed for the endpoint/variant mix (deterministic per request index)")
		jsonOut     = flag.Bool("json", false, "print the machine-readable report to stdout (human summary goes to stderr)")
		minHitRate  = flag.Float64("min-hit-rate", -1, "gate: fail unless cache hit rate >= this fraction")
		max5xx      = flag.Int("max-5xx", -1, "gate: fail if more than this many 5xx responses")
		max4xx      = flag.Int("max-4xx", -1, "gate: fail if more than this many 4xx responses")
		check304    = flag.Bool("check-304", false, "gate: require >=1 valid 304 (conditional mix must be >0) and zero 304 protocol violations")
	)
	flag.Parse()

	if *ingestBench > 0 {
		runIngestBench(*ingestBench, *jsonOut)
		return
	}

	st, err := openStore(*storeDir, *synthetic)
	if err != nil {
		log.Fatal(err)
	}
	srv := query.New(st)
	paths := splitEndpoints(*endpoints)
	if len(paths) == 0 {
		log.Fatal("no endpoints to drive (-endpoints)")
	}

	rep := drive(srv, driveConfig{
		rps:         *rps,
		requests:    *requests,
		concurrency: *concurrency,
		endpoints:   paths,
		gzipFrac:    *gzipFrac,
		condFrac:    *condFrac,
		seed:        *seed,
	})

	rep.Checks = applyGates(rep, gates{
		minHitRate: *minHitRate,
		max5xx:     *max5xx,
		max4xx:     *max4xx,
		check304:   *check304,
		condFrac:   *condFrac,
	})

	printHuman(rep)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
	if !rep.Checks.Passed {
		os.Exit(1)
	}
}

func openStore(dir string, synthetic int) (*store.Store, error) {
	if dir != "" && synthetic > 0 {
		return nil, fmt.Errorf("-store and -synthetic are mutually exclusive")
	}
	if dir == "" && synthetic == 0 {
		return nil, fmt.Errorf("nothing to serve: pass -store DIR or -synthetic N")
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	for i := 0; i < synthetic; i++ {
		if _, err := st.IngestArtifact(synthShard(uint64(i), 1)); err != nil {
			return nil, fmt.Errorf("synthetic shard %d: %w", i, err)
		}
	}
	return st, nil
}

func splitEndpoints(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// synthShard fabricates one multichip-shaped shard on the seed axis —
// the same region×channel×{wcdp_ber, wcdp_hc_first} shape the fleet
// produces — so synthetic runs exercise the real render paths.
func synthShard(seedFirst uint64, seedCount int) *results.Artifact {
	regions := []string{"first", "middle", "last"}
	const channels = 4
	a := &results.Artifact{
		Meta: results.Meta{
			Format:      results.FormatVersion,
			Tool:        "multichip",
			CodeVersion: "loadgen-synth",
			ConfigHash:  "10adcafe",
			GroupBy:     results.ByRegionChannel.String(),
			SeedFirst:   seedFirst,
			SeedCount:   seedCount,
			ShardCount:  1,
			Params:      map[string]string{"rows": "4"},
		},
	}
	for _, r := range regions {
		for ch := 0; ch < channels; ch++ {
			a.Groups = append(a.Groups, results.Group{
				Key: results.Key{Region: r, Channel: ch},
				Metrics: []results.Metric{
					{Name: "wcdp_ber", Stream: stats.NewStream(0, 1)},
					{Name: "wcdp_hc_first", Stream: stats.NewStream(0, 100000)},
				},
			})
		}
	}
	for s := seedFirst; s < seedFirst+uint64(seedCount); s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		for gi := range a.Groups {
			for k := 0; k < 5; k++ {
				a.Groups[gi].Metrics[0].Stream.Add(rng.Float64())
				a.Groups[gi].Metrics[1].Stream.Add(10000 + rng.Float64()*50000)
			}
		}
		a.Chips = append(a.Chips, results.ChipRecord{
			Seed: s, MinHCFirst: 10000 + int(s)*100, TRRPeriod: int(s%3) * 2048,
		})
	}
	return a
}

// ---------------------------------------------------------------------
// Load drive
// ---------------------------------------------------------------------

// spinWindow is how close to a scheduled arrival the pacer switches
// from sleeping to spinning.
const spinWindow = 2 * time.Millisecond

type driveConfig struct {
	rps         float64
	requests    int
	concurrency int
	endpoints   []string
	gzipFrac    float64
	condFrac    float64
	seed        int64
}

// Report is the machine-readable run record; scripts/README.md pins the
// schema for BENCH_query.json consumers.
type Report struct {
	Config struct {
		RPS         float64  `json:"rps"`
		Requests    int      `json:"requests"`
		Concurrency int      `json:"concurrency"`
		Endpoints   []string `json:"endpoints"`
		GzipFrac    float64  `json:"gzip_frac"`
		CondFrac    float64  `json:"conditional_frac"`
		Seed        int64    `json:"seed"`
	} `json:"config"`
	DurationS   float64 `json:"duration_s"`
	AchievedRPS float64 `json:"achieved_rps"`
	Status      struct {
		OK2xx     uint64 `json:"2xx"`
		NM304     uint64 `json:"304"`
		Err4xx    uint64 `json:"4xx"`
		Err5xx    uint64 `json:"5xx"`
		GzipBody  uint64 `json:"gzip_bodies"`
		Bad304    uint64 `json:"bad_304"`
		BytesServ uint64 `json:"bytes_served"`
	} `json:"status"`
	LatencyUS struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		P999 float64 `json:"p999"`
		Max  float64 `json:"max"`
		Mean float64 `json:"mean"`
	} `json:"latency_us"`
	Cache struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Checks checkReport `json:"checks"`
}

type checkReport struct {
	Passed   bool     `json:"passed"`
	Failures []string `json:"failures,omitempty"`
}

type gates struct {
	minHitRate float64
	max5xx     int
	max4xx     int
	check304   bool
	condFrac   float64
}

// workerState aggregates per worker so the hot loop touches no shared
// memory; merged after Wait.
type workerState struct {
	hist     hist
	class    [6]uint64 // status/100: 2xx, 3xx(=304 here), 4xx, 5xx
	n304     uint64
	bad304   uint64
	gzBodies uint64
	bytes    uint64
}

// loadWriter is the reusable ResponseWriter: header map persists (reset
// per request), body bytes are counted and dropped.
type loadWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *loadWriter) Header() http.Header         { return w.h }
func (w *loadWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *loadWriter) WriteHeader(code int)        { w.status = code }
func (w *loadWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
	w.status, w.n = http.StatusOK, 0
}

// mix64 is splitmix64's finalizer: the per-request decision source, so
// the endpoint/variant mix is a pure function of (seed, request index)
// and reruns are comparable.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func frac24(h uint64) float64 { return float64(h&0xffffff) / float64(1<<24) }

func drive(srv *query.Server, cfg driveConfig) *Report {
	if cfg.concurrency < 1 {
		cfg.concurrency = 1
	}
	h := srv.Handler()
	base := srv.Stats()

	// The full schedule is computed up front and buffered: the producer
	// can never be the bottleneck, so lateness is the server's alone.
	ticks := make(chan int, cfg.requests)
	for i := 0; i < cfg.requests; i++ {
		ticks <- i
	}
	close(ticks)

	var interval time.Duration
	if cfg.rps > 0 {
		interval = time.Duration(float64(time.Second) / cfg.rps)
	}

	states := make([]workerState, cfg.concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for wi := 0; wi < cfg.concurrency; wi++ {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			w := &loadWriter{h: make(http.Header, 16)}
			// Per-endpoint request pairs are built once; If-None-Match is
			// the only mutable header.
			plain := make([]*http.Request, len(cfg.endpoints))
			gz := make([]*http.Request, len(cfg.endpoints))
			lastETag := make([]string, len(cfg.endpoints))
			for i, p := range cfg.endpoints {
				plain[i] = httptest.NewRequest(http.MethodGet, p, nil)
				gz[i] = httptest.NewRequest(http.MethodGet, p, nil)
				gz[i].Header.Set("Accept-Encoding", "gzip")
			}
			for i := range ticks {
				d := mix64(uint64(cfg.seed) ^ uint64(i))
				ep := int(d % uint64(len(cfg.endpoints)))
				req := plain[ep]
				wantGzip := frac24(d>>8) < cfg.gzipFrac
				if wantGzip {
					req = gz[ep]
				}
				conditional := false
				if frac24(d>>32) < cfg.condFrac && lastETag[ep] != "" {
					conditional = true
					req.Header.Set("If-None-Match", lastETag[ep])
				}

				sched := time.Now()
				if interval > 0 {
					sched = t0.Add(time.Duration(i) * interval)
					// time.Sleep overshoots by up to ~1ms on Linux, which would
					// swamp a µs-scale data plane; sleep to within 2ms of the
					// deadline and spin-yield the rest, like wrk2-style pacers.
					// The Gosched keeps a spinning worker from starving its
					// peers when GOMAXPROCS < concurrency.
					if wait := time.Until(sched); wait > spinWindow {
						time.Sleep(wait - spinWindow)
					}
					for time.Now().Before(sched) {
						runtime.Gosched()
					}
				}
				w.reset()
				h.ServeHTTP(w, req)
				lat := time.Since(sched)
				if conditional {
					req.Header.Del("If-None-Match")
				}

				ws.hist.record(uint64(lat))
				ws.bytes += uint64(w.n)
				cls := w.status / 100
				if cls >= 0 && cls < len(ws.class) {
					ws.class[cls]++
				}
				switch {
				case w.status == http.StatusNotModified:
					ws.n304++
					// A 304 must be bodiless and only ever answer a request
					// that actually revalidated.
					if w.n != 0 || !conditional {
						ws.bad304++
					}
				case w.status == http.StatusOK:
					if et := w.h.Get("ETag"); et != "" {
						lastETag[ep] = et
					}
					if w.h.Get("Content-Encoding") == "gzip" {
						ws.gzBodies++
						if !wantGzip {
							ws.bad304++ // unsolicited encoding counts as a protocol violation too
						}
					}
				}
			}
		}(&states[wi])
	}
	wg.Wait()
	elapsed := time.Since(t0)
	after := srv.Stats()

	rep := &Report{}
	rep.Config.RPS = cfg.rps
	rep.Config.Requests = cfg.requests
	rep.Config.Concurrency = cfg.concurrency
	rep.Config.Endpoints = cfg.endpoints
	rep.Config.GzipFrac = cfg.gzipFrac
	rep.Config.CondFrac = cfg.condFrac
	rep.Config.Seed = cfg.seed

	var merged hist
	for i := range states {
		ws := &states[i]
		merged.merge(&ws.hist)
		rep.Status.OK2xx += ws.class[2]
		rep.Status.NM304 += ws.n304
		rep.Status.Err4xx += ws.class[4]
		rep.Status.Err5xx += ws.class[5]
		rep.Status.GzipBody += ws.gzBodies
		rep.Status.Bad304 += ws.bad304
		rep.Status.BytesServ += ws.bytes
	}
	rep.DurationS = elapsed.Seconds()
	if rep.DurationS > 0 {
		rep.AchievedRPS = float64(cfg.requests) / rep.DurationS
	}
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	rep.LatencyUS.P50 = us(merged.quantile(0.50))
	rep.LatencyUS.P90 = us(merged.quantile(0.90))
	rep.LatencyUS.P99 = us(merged.quantile(0.99))
	rep.LatencyUS.P999 = us(merged.quantile(0.999))
	rep.LatencyUS.Max = us(merged.maxNs)
	if merged.total > 0 {
		rep.LatencyUS.Mean = us(merged.sumNs) / float64(merged.total)
	}
	rep.Cache.Hits = after.Hits - base.Hits
	rep.Cache.Misses = after.Misses - base.Misses
	if lookups := rep.Cache.Hits + rep.Cache.Misses; lookups > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(lookups)
	}
	return rep
}

func applyGates(rep *Report, g gates) checkReport {
	var fails []string
	if g.minHitRate >= 0 && rep.Cache.HitRate < g.minHitRate {
		fails = append(fails, fmt.Sprintf("cache hit rate %.3f < required %.3f", rep.Cache.HitRate, g.minHitRate))
	}
	if g.max5xx >= 0 && rep.Status.Err5xx > uint64(g.max5xx) {
		fails = append(fails, fmt.Sprintf("%d 5xx responses > allowed %d", rep.Status.Err5xx, g.max5xx))
	}
	if g.max4xx >= 0 && rep.Status.Err4xx > uint64(g.max4xx) {
		fails = append(fails, fmt.Sprintf("%d 4xx responses > allowed %d", rep.Status.Err4xx, g.max4xx))
	}
	if g.check304 {
		if g.condFrac <= 0 {
			fails = append(fails, "-check-304 requires -conditional > 0")
		} else if rep.Status.NM304 == 0 {
			fails = append(fails, "no 304 responses observed despite conditional mix")
		}
		if rep.Status.Bad304 > 0 {
			fails = append(fails, fmt.Sprintf("%d 304/encoding protocol violations", rep.Status.Bad304))
		}
	}
	return checkReport{Passed: len(fails) == 0, Failures: fails}
}

func printHuman(rep *Report) {
	fmt.Fprintf(os.Stderr,
		"loadgen: %d requests in %.2fs (%.0f req/s achieved, %.0f scheduled) over %s\n",
		rep.Config.Requests, rep.DurationS, rep.AchievedRPS, rep.Config.RPS,
		strings.Join(rep.Config.Endpoints, ","))
	fmt.Fprintf(os.Stderr,
		"loadgen: latency µs p50=%.0f p90=%.0f p99=%.0f p999=%.0f max=%.0f mean=%.1f\n",
		rep.LatencyUS.P50, rep.LatencyUS.P90, rep.LatencyUS.P99,
		rep.LatencyUS.P999, rep.LatencyUS.Max, rep.LatencyUS.Mean)
	fmt.Fprintf(os.Stderr,
		"loadgen: status 2xx=%d 304=%d 4xx=%d 5xx=%d gzip=%d bytes=%d; cache hit rate %.3f (%d/%d)\n",
		rep.Status.OK2xx, rep.Status.NM304, rep.Status.Err4xx, rep.Status.Err5xx,
		rep.Status.GzipBody, rep.Status.BytesServ,
		rep.Cache.HitRate, rep.Cache.Hits, rep.Cache.Hits+rep.Cache.Misses)
	for _, f := range rep.Checks.Failures {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: %s\n", f)
	}
}

// ---------------------------------------------------------------------
// HDR-style histogram
// ---------------------------------------------------------------------

// hist is a log-bucketed latency histogram: 32 linear sub-buckets per
// power of two, so any recorded value lands within 1/32 (3.2%) of its
// bucket's midpoint. 2048 fixed buckets cover the full uint64 range —
// no allocation, merge is element-wise addition.
type hist struct {
	counts [2048]uint64
	total  uint64
	sumNs  uint64
	maxNs  uint64
}

func histIndex(v uint64) int {
	if v < 32 {
		return int(v)
	}
	m := bits.Len64(v) - 1 // top bit position, >= 5
	return (m-4)<<5 | int((v>>(uint(m)-5))&31)
}

// histValue reconstructs a bucket's midpoint.
func histValue(idx int) uint64 {
	if idx < 32 {
		return uint64(idx)
	}
	m := idx>>5 + 4
	lo := uint64(32|idx&31) << (uint(m) - 5)
	return lo + 1<<(uint(m)-5)/2
}

func (h *hist) record(ns uint64) {
	h.counts[histIndex(ns)]++
	h.total++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sumNs += o.sumNs
	if o.maxNs > h.maxNs {
		h.maxNs = o.maxNs
	}
}

func (h *hist) quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(q*float64(h.total) + 0.5)
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return histValue(i)
		}
	}
	return h.maxNs
}

// ---------------------------------------------------------------------
// Ingest throughput benchmark
// ---------------------------------------------------------------------

// ingestReport records the incremental-merge win: the same N shard
// blobs ingested in arrival order into an incremental store and into
// one forced onto the legacy full-rebuild path, with the final sealed
// views byte-compared — the speedup is only worth reporting if the
// views are identical.
type ingestReport struct {
	Shards        int     `json:"shards"`
	IncrementalS  float64 `json:"incremental_s"`
	FullRebuildS  float64 `json:"full_rebuild_s"`
	Speedup       float64 `json:"speedup"`
	ByteIdentical bool    `json:"byte_identical"`
	ShardsPerSec  float64 `json:"incremental_shards_per_s"`
}

func runIngestBench(n int, jsonOut bool) {
	blobs := make([][]byte, n)
	for i := 0; i < n; i++ {
		b, err := synthShard(uint64(i), 1).MarshalIndented()
		if err != nil {
			log.Fatal(err)
		}
		blobs[i] = b
	}

	run := func(full bool) (time.Duration, []byte) {
		st, err := store.Open("")
		if err != nil {
			log.Fatal(err)
		}
		st.ForceFullRebuild(full)
		t0 := time.Now()
		var last store.IngestResult
		for _, b := range blobs {
			if last, err = st.Ingest(b); err != nil {
				log.Fatal(err)
			}
		}
		d := time.Since(t0)
		if !last.Complete {
			log.Fatalf("ingest bench: view incomplete after %d shards (pending %d)", n, last.Pending)
		}
		snap, ok := st.Snapshot(last.Corpus)
		if !ok {
			log.Fatalf("ingest bench: corpus %s has no snapshot", last.Corpus)
		}
		view, err := snap.Merged.MarshalIndented()
		if err != nil {
			log.Fatal(err)
		}
		return d, view
	}

	incD, incView := run(false)
	fullD, fullView := run(true)

	rep := ingestReport{
		Shards:        n,
		IncrementalS:  incD.Seconds(),
		FullRebuildS:  fullD.Seconds(),
		ByteIdentical: string(incView) == string(fullView),
	}
	if rep.IncrementalS > 0 {
		rep.Speedup = rep.FullRebuildS / rep.IncrementalS
		rep.ShardsPerSec = float64(n) / rep.IncrementalS
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: ingest %d shards: incremental %.3fs (%.0f shards/s), full rebuild %.3fs — %.1fx speedup, byte-identical=%v\n",
		n, rep.IncrementalS, rep.ShardsPerSec, rep.FullRebuildS, rep.Speedup, rep.ByteIdentical)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
	if !rep.ByteIdentical {
		log.Fatal("ingest bench: incremental and full-rebuild views differ — merge invariant broken")
	}
}
