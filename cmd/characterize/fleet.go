package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hbmrh "github.com/safari-repro/hbmrh"
)

// runFleet is the `characterize fleet` subcommand: one command that
// partitions an experiment across local shard worker processes, watches
// them, retries failures and stragglers from their journals, and merges
// the result. -workers here counts shard worker processes (the registry
// mode's per-job device knob is -job-workers).
func runFleet(args []string) {
	fs := flag.NewFlagSet("characterize fleet", flag.ExitOnError)
	var (
		experiment = fs.String("experiment", "", "registry experiment to run (see characterize -experiment list)")
		chip       = fs.String("chip", "small", "chip preset: paper or small")
		rows       = fs.Int("rows", 24, "sampling density: victim rows per region or per point")
		hammers    = fs.Int("hammers", hbmrh.DefaultHammers, "hammer count / HCfirst ceiling")
		seeds      = fs.Int("seeds", 0, "chip instances for fleet experiments (0 = experiment default)")
		iterations = fs.Int("iterations", 0, "U-TRR iterations for the TRR studies (0 = default)")
		jobWorkers = fs.Int("job-workers", 0, "parallel measurement devices per job (0 = auto)")
		parallel   = fs.Int("parallel", 0, "concurrent plan jobs per worker process (0 = one per CPU)")
		planner    = fs.String("planner", "queue", "job planner: queue, contiguous, weighted or stealing")
		workers    = fs.Int("workers", 2, "shard worker processes")
		chunk      = fs.Int("chunk", 1, "jobs per checkpoint: each worker journals a sealed artifact every N jobs")
		dir        = fs.String("dir", "", "journal + shard directory (default: a temp dir; a fixed dir makes reruns resume)")
		retries    = fs.Int("retries", 2, "relaunches per failed or stalled shard (-1 = none)")
		backoff    = fs.Bool("retry-backoff", true, "capped exponential backoff with deterministic jitter between relaunches")
		stall      = fs.Duration("stall", 0, "straggler gate: kill and retry a worker silent for this long (0 = off)")
		killAfter  = fs.String("kill-after", "", "fault injection for tests: I:K kills worker I after K journaled chunks (first launch only)")
		failpoints = fs.String("failpoints", "", "failpoint spec armed in every worker's first launch (internal/failpoint; relaunches come back clean)")
		progress   = fs.Bool("progress", false, "stream aggregate job completion and worker lifecycle on stderr")
		storeDir   = fs.String("store", "", "artifact store directory: auto-ingest every shard after the merge (serve with resultsd)")
		csvOut     = fs.String("csv", "", "summary CSV file (\"-\" = stdout)")
		jsonOut    = fs.String("json", "", "summary JSON file (\"-\" = stdout)")
		artifact   = fs.String("artifact", "", "merged artifact file (\"-\" = stdout)")
		groupBy    = fs.String("group-by", "", "export axis (default: the artifact's stored axis)")
	)
	fs.Parse(args)
	if *experiment == "" {
		log.Fatal("fleet needs -experiment NAME (see characterize -experiment list)")
	}
	if fs.NArg() != 0 {
		log.Fatalf("fleet takes no positional arguments (got %q)", fs.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := hbmrh.FleetSpec{
		Study: hbmrh.FleetStudy{
			Experiment: *experiment,
			Chip:       *chip,
			Rows:       *rows,
			Hammers:    *hammers,
			Seeds:      *seeds,
			Iterations: *iterations,
			JobWorkers: *jobWorkers,
			Parallel:   *parallel,
			Planner:    *planner,
		},
		Workers:          *workers,
		Chunk:            *chunk,
		Dir:              *dir,
		Retries:          *retries,
		StallTimeout:     *stall,
		WorkerFailpoints: *failpoints,
		Ctx:              ctx,
	}
	if !*backoff {
		spec.Backoff = -1
	}
	if *storeDir != "" {
		st, err := hbmrh.OpenArtifactStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		spec.Store = st
	}
	if *killAfter != "" {
		var i, k int
		if _, err := fmt.Sscanf(*killAfter, "%d:%d", &i, &k); err != nil || fmt.Sprintf("%d:%d", i, k) != *killAfter || k < 1 {
			log.Fatalf("bad -kill-after %q: want I:K, e.g. 0:1", *killAfter)
		}
		spec.KillAfter = map[int]int{i: k}
	}
	if *progress {
		spec.Progress = func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "\rjobs: %d/%d", p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
		spec.Log = func(format string, a ...any) {
			line := fmt.Sprintf(format, a...)
			fmt.Fprintln(os.Stderr, strings.TrimRight(line, "\n"))
		}
	}

	start := time.Now()
	a, err := hbmrh.RunFleet(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "fleet: done in %s\n", time.Since(start).Round(time.Millisecond))
	}
	exportArtifact(a, *groupBy, *csvOut, *jsonOut, *artifact)
}
