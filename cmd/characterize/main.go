// characterize regenerates the paper's evaluation figures (Figs. 3-6) on
// the simulated HBM2 chip, printing ASCII renders plus the headline
// numbers the paper reports, and optionally exporting raw CSV data.
//
// Usage:
//
//	characterize [-chip paper|small] [-fig all|3|4|5|6|press|temp|cross]
//	             [-rows N] [-bankrows N] [-hammers N] [-workers N]
//	             [-progress] [-csv DIR]
//
// With -rows 0 every row of the test regions is measured, as in the
// paper; the default samples for a quick run. The press/temp/cross
// figures are the paper's Section 6 future-work studies, implemented as
// extensions.
//
// Long runs are interruptible: Ctrl-C cancels the execution engine
// between measurement jobs, and -progress reports live job completion on
// stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	hbmrh "github.com/safari-repro/hbmrh"
	"github.com/safari-repro/hbmrh/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		chip     = flag.String("chip", "small", "chip preset: paper or small")
		fig      = flag.String("fig", "all", "figure to regenerate: all, 3, 4, 5, 6, press, temp or cross")
		rows     = flag.Int("rows", 24, "victim rows sampled per region for figs 3-5 (0 = all rows)")
		bankRows = flag.Int("bankrows", 16, "rows per bank region for fig 6 (paper: 100)")
		hammers  = flag.Int("hammers", hbmrh.DefaultHammers, "hammer count / HCfirst ceiling")
		workers  = flag.Int("workers", 0, "parallel measurement devices (0 = auto)")
		progress = flag.Bool("progress", false, "report engine job completion on stderr")
		csvDir   = flag.String("csv", "", "directory for raw CSV exports (empty = none)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Progress rewrites one stderr line per stage; midLine tracks whether
	// that line is unterminated so a fatal exit (Ctrl-C mid-stage) starts
	// on a fresh line instead of overwriting the counter. The engine
	// serializes callbacks and returns only after they finish, so die
	// never races a progress write.
	midLine := false
	track := func(stage string) hbmrh.EngineProgressFunc {
		if !*progress {
			return nil
		}
		return func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d jobs", stage, p.Done, p.Total)
			midLine = p.Done != p.Total
			if !midLine {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	die := func(err error) {
		if midLine {
			fmt.Fprintln(os.Stderr)
		}
		log.Fatal(err)
	}

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("3") || want("4") || want("5") {
		sweep, err := hbmrh.RunSweep(hbmrh.SweepOptions{
			Cfg:           cfg,
			Hammers:       *hammers,
			RowsPerRegion: *rows,
			Workers:       *workers,
			Ctx:           ctx,
			Progress:      track("figs 3-5 sweep"),
		})
		if err != nil {
			die(err)
		}
		if want("3") {
			f3 := hbmrh.Fig3{Sweep: sweep}
			fmt.Print(f3.Render())
			h := f3.Headlines()
			fmt.Printf("headlines: max/min channel WCDP BER ratio %.2fx (paper 2.03x); "+
				"max cross-channel spread %.0f%% (paper 79%%); max BER %.2f%% (paper 3.13%%)\n\n",
				h.MaxOverMinWCDP, h.MaxSpreadPct, h.MaxBER)
		}
		if want("4") {
			f4 := hbmrh.Fig4{Sweep: sweep}
			fmt.Print(f4.Render())
			h := f4.Headlines()
			fmt.Printf("headlines: min HCfirst %d (paper 14531); channel spread %.0f%% (paper 20%%); "+
				"ch0 RS0/RS1 mean %.0f/%.0f (paper 57925/79179)\n\n",
				h.MinHCFirst, h.SpreadPct, h.Ch0Rowstripe0, h.Ch0Rowstripe1)
		}
		if want("5") {
			f5 := hbmrh.Fig5{Sweep: sweep}
			fmt.Print(f5.Render())
			h := f5.Headlines()
			fmt.Printf("headlines: last-subarray BER ratio %.2fx; mid/edge ratio %.2fx\n\n",
				h.LastSubarrayRatio, h.MidOverEdge)
		}
		if *csvDir != "" {
			hd, data := sweep.CSV()
			if err := writeCSV(filepath.Join(*csvDir, "sweep.csv"), hd, data); err != nil {
				die(err)
			}
		}
	}

	if want("6") {
		f6, err := hbmrh.RunFig6(hbmrh.Fig6Options{
			Cfg:               cfg,
			Hammers:           *hammers,
			RowsPerBankRegion: *bankRows,
			Workers:           *workers,
			Ctx:               ctx,
			Progress:          track("fig 6 banks"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(f6.Render())
		h := f6.Headlines()
		fmt.Printf("headlines: bank mean BER %.2f-%.2f%% (paper 0.8-1.6%%); CV %.2f-%.2f (paper 0.22-0.34); "+
			"cross/intra channel spread %.1fx\n",
			h.MeanLo, h.MeanHi, h.CVLo, h.CVHi, h.CrossOverIntra)
		if *csvDir != "" {
			hd, data := f6.CSV()
			if err := writeCSV(filepath.Join(*csvDir, "fig6.csv"), hd, data); err != nil {
				die(err)
			}
		}
	}

	// The extension studies run only when asked for explicitly ("all"
	// covers the paper's own artifacts).
	switch *fig {
	case "press":
		s, err := hbmrh.RunRowPress(hbmrh.RowPressOptions{
			Cfg:      cfg,
			Bank:     hbmrh.BankAddr{Channel: 7},
			Workers:  *workers,
			Ctx:      ctx,
			Progress: track("rowpress points"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "temp":
		s, err := hbmrh.RunTempSweep(hbmrh.TempSweepOptions{
			Cfg:      cfg,
			Bank:     hbmrh.BankAddr{Channel: 7},
			Workers:  *workers,
			Ctx:      ctx,
			Progress: track("temperature setpoints"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "cross":
		s, err := hbmrh.RunCrossChannel(hbmrh.CrossChannelOptions{
			Cfg:              cfg,
			AggressorChannel: 4,
			Ctx:              ctx,
			Progress:         track("cross-channel arms"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "bypass":
		// Nominal-refresh pointer cadence matters: force paper geometry.
		s, err := hbmrh.RunTRRBypass(hbmrh.TRRBypassOptions{
			Bank:    hbmrh.BankAddr{Channel: 7},
			Hammers: *hammers,
			Ctx:     ctx,
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "all", "3", "4", "5", "6":
	default:
		log.Fatalf("unknown -fig %q", *fig)
	}
}

func writeCSV(path string, headers []string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSV(f, headers, rows); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}
