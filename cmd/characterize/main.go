// characterize is the front end of the experiment registry: every study
// in the repo — the paper's figures and the extension studies — runs
// through one pipeline that plans jobs, shards them, streams aggregates,
// and serializes mergeable artifacts.
//
// Registry mode (the primary interface):
//
//	characterize -experiment NAME [-chip paper|small] [-rows N]
//	             [-hammers N] [-seeds N] [-iterations N] [-workers N]
//	             [-parallel N] [-planner P] [-shard I/N] [-progress]
//	             [-artifact FILE] [-csv FILE] [-json FILE] [-group-by AXIS]
//	characterize -experiment list
//	characterize -experiment paper        # the paper suite: sweep+fig6+trrstudy
//	characterize merge [-artifact FILE] [-csv FILE] [-json FILE]
//	             [-group-by AXIS] shard.json|glob|dir...
//
// Every registered experiment gains -shard i/N + artifact merge for
// free: N shard processes produce artifacts that `characterize merge`
// recombines into output byte-identical to a single-process run. merge
// arguments may be files, globs or directories; failures name the
// offending shard. The experiment is inferred from the artifacts and the
// merged result renders with the experiment's own report.
//
// Fleet mode replaces the shard-launch shell loop with a coordinator:
//
//	characterize fleet -experiment NAME -workers N [-chunk J] [-dir DIR]
//	             [-retries R] [-stall DURATION] [study flags] [export flags]
//
// It partitions the plan across N worker subprocesses, streams their
// progress, relaunches dead or straggling workers (journals make every
// relaunch resume where the worker died), and auto-merges the shard
// artifacts — output stays byte-identical to the single-process run. See
// DESIGN.md §10.
//
// Figure mode (the original interface) renders the paper's evaluation
// figures with ASCII plots and headline numbers:
//
//	characterize [-chip paper|small] [-fig all|3|4|5|6|press|temp|cross]
//	             [-rows N] [-bankrows N] [-hammers N] [-workers N]
//	             [-progress] [-csv DIR]
//
// Long runs are interruptible: Ctrl-C cancels the execution engine down
// to per-measurement granularity, and -progress reports live job
// completion on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	hbmrh "github.com/safari-repro/hbmrh"
	"github.com/safari-repro/hbmrh/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "merge":
			runMerge(os.Args[2:])
			return
		case "fleet":
			runFleet(os.Args[2:])
			return
		case hbmrh.FleetWorkerCommand:
			// The fleet coordinator re-executes this binary as its shard
			// workers; never invoked by operators directly.
			os.Exit(hbmrh.FleetWorkerMain(os.Args[2:]))
		}
	}
	var (
		experiment = flag.String("experiment", "", "registry experiment to run (see -experiment list), or: list, paper")
		chip       = flag.String("chip", "small", "chip preset: paper or small")
		fig        = flag.String("fig", "all", "figure mode: figure to regenerate (all, 3, 4, 5, 6, press, temp, cross or bypass)")
		rows       = flag.Int("rows", 24, "sampling density: victim rows per region (figs 3-5) or per point")
		bankRows   = flag.Int("bankrows", 16, "rows per bank region for fig 6 (paper: 100)")
		hammers    = flag.Int("hammers", hbmrh.DefaultHammers, "hammer count / HCfirst ceiling")
		seeds      = flag.Int("seeds", 0, "chip instances for fleet experiments (0 = experiment default)")
		iterations = flag.Int("iterations", 0, "U-TRR iterations for the TRR studies (0 = default)")
		workers    = flag.Int("workers", 0, "parallel measurement devices per job (0 = auto)")
		parallel   = flag.Int("parallel", 0, "concurrent plan jobs in registry mode (0 = one per CPU)")
		planner    = flag.String("planner", "queue", "job planner: queue, contiguous, weighted or stealing (never changes output)")
		shard      = flag.String("shard", "", "run one plan shard, as I/N (registry mode)")
		progress   = flag.Bool("progress", false, "report engine job completion on stderr")
		csvOut     = flag.String("csv", "", "figure mode: directory for raw CSV exports; registry mode: summary CSV file (\"-\" = stdout)")
		jsonOut    = flag.String("json", "", "registry mode: summary JSON file (\"-\" = stdout)")
		artifact   = flag.String("artifact", "", "registry mode: serialized artifact file, the merge input (\"-\" = stdout)")
		groupBy    = flag.String("group-by", "", "registry mode: export axis (default: the artifact's stored axis)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	switch *experiment {
	case "":
		runFigures(ctx, cfg, *fig, *rows, *bankRows, *hammers, *workers, *progress, *csvOut)
	case "list":
		listExperiments()
	case "paper":
		if *shard != "" || *artifact != "" || *csvOut != "" || *jsonOut != "" || *groupBy != "" {
			log.Fatal("the paper suite runs several experiments; shard or export them individually (-shard/-artifact/-csv/-json/-group-by apply to single experiments)")
		}
		opts := registryOptions(ctx, cfg, *rows, *hammers, *seeds, *iterations, *workers, *parallel, *planner, *progress)
		opts.Rows = *rows
		for _, name := range []string{"sweep", "fig6", "trrstudy"} {
			if name == "fig6" {
				opts.Rows = *bankRows
			} else {
				opts.Rows = *rows
			}
			a, err := hbmrh.RunExperiment(name, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(hbmrh.RenderExperimentArtifact(a))
			fmt.Println()
		}
	default:
		opts := registryOptions(ctx, cfg, *rows, *hammers, *seeds, *iterations, *workers, *parallel, *planner, *progress)
		var err error
		if opts.Shard, opts.ShardCount, err = hbmrh.ParseShardFlag(*shard); err != nil {
			log.Fatal(err)
		}
		a, err := hbmrh.RunExperiment(*experiment, opts)
		if err != nil {
			log.Fatal(err)
		}
		exportArtifact(a, *groupBy, *csvOut, *jsonOut, *artifact)
	}
}

// registryOptions maps the CLI flags onto the registry's uniform knobs.
func registryOptions(ctx context.Context, cfg *hbmrh.Config, rows, hammers, seeds, iterations, workers, parallel int, planner string, progress bool) hbmrh.ExperimentOptions {
	plan, err := hbmrh.ParsePlanner(planner)
	if err != nil {
		log.Fatal(err)
	}
	o := hbmrh.ExperimentOptions{
		Cfg:        cfg,
		Rows:       rows,
		Hammers:    hammers,
		Seeds:      seeds,
		Iterations: iterations,
		Workers:    workers,
		Parallel:   parallel,
		Planner:    plan,
		Ctx:        ctx,
	}
	if progress {
		o.Progress = func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "\rjobs: %d/%d", p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return o
}

func listExperiments() {
	fmt.Println("registered experiments (run with -experiment NAME):")
	for _, e := range hbmrh.Experiments() {
		fmt.Printf("  %-13s %s\n", e.Name, e.Title)
	}
	fmt.Println("  paper         suite: sweep + fig6 + trrstudy at the given budget")
}

// exportArtifact renders and exports one artifact: the experiment's
// report on stdout (unless an export claims it) plus the requested
// summary/artifact files.
func exportArtifact(a *hbmrh.ResultsArtifact, groupBy, csvOut, jsonOut, artifact string) {
	gb, err := hbmrh.ParseGroupBy(a.Meta.GroupBy)
	if err != nil {
		log.Fatal(err)
	}
	if groupBy != "" {
		if gb, err = hbmrh.ParseGroupBy(groupBy); err != nil {
			log.Fatal(err)
		}
	}
	stdout := 0
	for _, p := range []string{csvOut, jsonOut, artifact} {
		if p == "-" {
			stdout++
		}
	}
	if stdout > 1 {
		log.Fatal("only one of -csv, -json, -artifact may claim stdout")
	}
	if stdout == 0 {
		fmt.Print(hbmrh.RenderExperimentArtifact(a))
	}
	if csvOut != "" {
		if err := writeSummaryCSV(a, gb, csvOut); err != nil {
			log.Fatal(err)
		}
	}
	if jsonOut != "" {
		js, err := a.SummaryJSON(gb)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeOut(jsonOut, js); err != nil {
			log.Fatal(err)
		}
	}
	if artifact != "" {
		if err := a.WriteFile(artifact); err != nil {
			log.Fatal(err)
		}
	}
}

func runMerge(args []string) {
	fs := flag.NewFlagSet("characterize merge", flag.ExitOnError)
	var (
		csvOut   = fs.String("csv", "", "summary CSV file (\"-\" = stdout)")
		jsonOut  = fs.String("json", "", "summary JSON file (\"-\" = stdout)")
		artifact = fs.String("artifact", "", "merged artifact file (\"-\" = stdout)")
		groupBy  = fs.String("group-by", "", "export axis (default: the artifact's stored axis)")
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		log.Fatal("merge needs at least one shard artifact file, glob or directory")
	}
	merged, err := hbmrh.MergeShardFiles(fs.Args())
	if err != nil {
		log.Fatal(err)
	}
	exportArtifact(merged, *groupBy, *csvOut, *jsonOut, *artifact)
}

func writeSummaryCSV(a *hbmrh.ResultsArtifact, gb hbmrh.ResultsGroupBy, path string) error {
	headers, rows, err := a.SummaryCSV(gb)
	if err != nil {
		return err
	}
	if path == "-" {
		return report.WriteCSV(os.Stdout, headers, rows)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteCSV(f, headers, rows)
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runFigures is the original figure-rendering mode, kept verbatim: the
// registry's artifact pipeline carries distributions, while this mode
// renders the paper's ASCII figures and headline comparisons.
func runFigures(ctx context.Context, cfg *hbmrh.Config, fig string, rows, bankRows, hammers, workers int, progress bool, csvDir string) {
	// Progress rewrites one stderr line per stage; midLine tracks whether
	// that line is unterminated so a fatal exit (Ctrl-C mid-stage) starts
	// on a fresh line instead of overwriting the counter. The engine
	// serializes callbacks and returns only after they finish, so die
	// never races a progress write.
	midLine := false
	track := func(stage string) hbmrh.EngineProgressFunc {
		if !progress {
			return nil
		}
		return func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d jobs", stage, p.Done, p.Total)
			midLine = p.Done != p.Total
			if !midLine {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	die := func(err error) {
		if midLine {
			fmt.Fprintln(os.Stderr)
		}
		log.Fatal(err)
	}

	want := func(f string) bool { return fig == "all" || fig == f }

	if want("3") || want("4") || want("5") {
		sweep, err := hbmrh.RunSweep(hbmrh.SweepOptions{
			Cfg:           cfg,
			Hammers:       hammers,
			RowsPerRegion: rows,
			Workers:       workers,
			Ctx:           ctx,
			Progress:      track("figs 3-5 sweep"),
		})
		if err != nil {
			die(err)
		}
		if want("3") {
			f3 := hbmrh.Fig3{Sweep: sweep}
			fmt.Print(f3.Render())
			h := f3.Headlines()
			fmt.Printf("headlines: max/min channel WCDP BER ratio %.2fx (paper 2.03x); "+
				"max cross-channel spread %.0f%% (paper 79%%); max BER %.2f%% (paper 3.13%%)\n\n",
				h.MaxOverMinWCDP, h.MaxSpreadPct, h.MaxBER)
		}
		if want("4") {
			f4 := hbmrh.Fig4{Sweep: sweep}
			fmt.Print(f4.Render())
			h := f4.Headlines()
			fmt.Printf("headlines: min HCfirst %d (paper 14531); channel spread %.0f%% (paper 20%%); "+
				"ch0 RS0/RS1 mean %.0f/%.0f (paper 57925/79179)\n\n",
				h.MinHCFirst, h.SpreadPct, h.Ch0Rowstripe0, h.Ch0Rowstripe1)
		}
		if want("5") {
			f5 := hbmrh.Fig5{Sweep: sweep}
			fmt.Print(f5.Render())
			h := f5.Headlines()
			fmt.Printf("headlines: last-subarray BER ratio %.2fx; mid/edge ratio %.2fx\n\n",
				h.LastSubarrayRatio, h.MidOverEdge)
		}
		if csvDir != "" {
			hd, data := sweep.CSV()
			if err := writeCSVFile(filepath.Join(csvDir, "sweep.csv"), hd, data); err != nil {
				die(err)
			}
		}
	}

	if want("6") {
		f6, err := hbmrh.RunFig6(hbmrh.Fig6Options{
			Cfg:               cfg,
			Hammers:           hammers,
			RowsPerBankRegion: bankRows,
			Workers:           workers,
			Ctx:               ctx,
			Progress:          track("fig 6 banks"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(f6.Render())
		h := f6.Headlines()
		fmt.Printf("headlines: bank mean BER %.2f-%.2f%% (paper 0.8-1.6%%); CV %.2f-%.2f (paper 0.22-0.34); "+
			"cross/intra channel spread %.1fx\n",
			h.MeanLo, h.MeanHi, h.CVLo, h.CVHi, h.CrossOverIntra)
		if csvDir != "" {
			hd, data := f6.CSV()
			if err := writeCSVFile(filepath.Join(csvDir, "fig6.csv"), hd, data); err != nil {
				die(err)
			}
		}
	}

	// The extension studies run only when asked for explicitly ("all"
	// covers the paper's own artifacts).
	switch fig {
	case "press":
		s, err := hbmrh.RunRowPress(hbmrh.RowPressOptions{
			Cfg:      cfg,
			Bank:     hbmrh.BankAddr{Channel: 7},
			Workers:  workers,
			Ctx:      ctx,
			Progress: track("rowpress points"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "temp":
		s, err := hbmrh.RunTempSweep(hbmrh.TempSweepOptions{
			Cfg:      cfg,
			Bank:     hbmrh.BankAddr{Channel: 7},
			Workers:  workers,
			Ctx:      ctx,
			Progress: track("temperature setpoints"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "cross":
		s, err := hbmrh.RunCrossChannel(hbmrh.CrossChannelOptions{
			Cfg:              cfg,
			AggressorChannel: 4,
			Ctx:              ctx,
			Progress:         track("cross-channel arms"),
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "bypass":
		// Nominal-refresh pointer cadence matters: force paper geometry.
		s, err := hbmrh.RunTRRBypass(hbmrh.TRRBypassOptions{
			Bank:    hbmrh.BankAddr{Channel: 7},
			Hammers: hammers,
			Ctx:     ctx,
		})
		if err != nil {
			die(err)
		}
		fmt.Print(s.Render())
	case "all", "3", "4", "5", "6":
	default:
		log.Fatalf("unknown -fig %q", fig)
	}
}

func writeCSVFile(path string, headers []string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSV(f, headers, rows); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}
