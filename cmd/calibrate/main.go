// calibrate runs the paper-chip characterization at a chosen sampling
// density and prints a paper-vs-measured comparison for every headline
// number in the paper, in the markdown shape EXPERIMENTS.md records.
//
// Usage:
//
//	calibrate [-rows N] [-bankrows N] [-skip6] [-skiptrr]
package main

import (
	"flag"
	"fmt"
	"log"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	var (
		rows     = flag.Int("rows", 30, "victim rows per region for the fig 3-5 sweep (0 = all)")
		bankRows = flag.Int("bankrows", 8, "rows per bank region for fig 6 (paper: 100)")
		skip6    = flag.Bool("skip6", false, "skip the fig 6 bank study")
		skipTRR  = flag.Bool("skiptrr", false, "skip the section 5 study")
	)
	flag.Parse()

	cfg := hbmrh.PaperChip()
	sweep, err := hbmrh.RunSweep(hbmrh.SweepOptions{Cfg: cfg, RowsPerRegion: *rows})
	if err != nil {
		log.Fatal(err)
	}
	h3 := hbmrh.Fig3{Sweep: sweep}.Headlines()
	h4 := hbmrh.Fig4{Sweep: sweep}.Headlines()
	h5 := hbmrh.Fig5{Sweep: sweep}.Headlines()

	fmt.Println("## Per-channel WCDP means (sweep)")
	fmt.Println()
	fmt.Println("| channel | mean WCDP BER (%) | mean WCDP HCfirst |")
	fmt.Println("|---|---|---|")
	for ch := range h3.WCDPMeanBER {
		fmt.Printf("| %d | %.3f | %.0f |\n", ch, h3.WCDPMeanBER[ch], h4.WCDPMeanHC[ch])
	}
	fmt.Println()
	fmt.Println("## Headline comparison")
	fmt.Println()
	fmt.Println("| metric | paper | measured |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| WCDP BER ratio, worst/best channel | 2.03x | %.2fx |\n", h3.MaxOverMinWCDP)
	fmt.Printf("| max cross-channel BER spread | 79%% | %.0f%% |\n", h3.MaxSpreadPct)
	fmt.Printf("| max per-row BER | 3.13%% | %.2f%% |\n", h3.MaxBER)
	fmt.Printf("| min HCfirst | 14531 | %d |\n", h4.MinHCFirst)
	fmt.Printf("| WCDP HCfirst channel spread | up to 20%% | %.0f%% |\n", h4.SpreadPct)
	fmt.Printf("| ch0 mean HCfirst, Rowstripe0 | 57925 | %.0f |\n", h4.Ch0Rowstripe0)
	fmt.Printf("| ch0 mean HCfirst, Rowstripe1 | 79179 | %.0f |\n", h4.Ch0Rowstripe1)
	fmt.Printf("| last-subarray BER vs rest | far fewer flips | %.2fx |\n", h5.LastSubarrayRatio)
	fmt.Printf("| BER peaks mid-subarray | yes | mid/edge %.2fx |\n", h5.MidOverEdge)

	if !*skip6 {
		f6, err := hbmrh.RunFig6(hbmrh.Fig6Options{Cfg: cfg, RowsPerBankRegion: *bankRows})
		if err != nil {
			log.Fatal(err)
		}
		h6 := f6.Headlines()
		fmt.Printf("| bank mean BER range | 0.8-1.6%% | %.2f-%.2f%% |\n", h6.MeanLo, h6.MeanHi)
		fmt.Printf("| bank BER CV range | 0.22-0.34 | %.2f-%.2f |\n", h6.CVLo, h6.CVHi)
		fmt.Printf("| max within-channel bank spread | 0.23%% (ch7) | %.2f%% |\n", h6.MaxIntraChannelSpread)
		fmt.Printf("| channel variation dominates banks | yes | cross/intra %.1fx |\n", h6.CrossOverIntra)
	}

	if !*skipTRR {
		s, err := hbmrh.RunTRRStudy(hbmrh.TRRStudyOptions{Cfg: cfg,
			Bank: hbmrh.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("| TRR victim refresh period | every 17 REFs | every %d REFs (periodic=%v) |\n",
			s.Period, s.Periodic)
	}
}
