// benderasm assembles and runs textual DRAM Bender programs against the
// simulated HBM2 chip, printing the read FIFO — the workflow a DRAM
// Bender user has against the real FPGA infrastructure.
//
// Usage:
//
//	benderasm [-chip paper|small] [-dis] PROGRAM.bend
//
// With -dis the program is only validated and re-printed in canonical
// form. Reads are printed one column per line as hex.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benderasm: ")
	var (
		chip  = flag.String("chip", "small", "chip preset: paper or small")
		dis   = flag.Bool("dis", false, "validate and disassemble only, do not run")
		trace = flag.Bool("trace", false, "log every executed command with its simulated timestamp")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: benderasm [-chip paper|small] [-dis] PROGRAM.bend")
	}

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := hbmrh.AssembleProgram(string(src), cfg.Geometry)
	if err != nil {
		log.Fatal(err)
	}
	if *dis {
		fmt.Print(hbmrh.DisassembleProgram(prog))
		return
	}

	dev, err := hbmrh.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	runner := hbmrh.NewBenderRunner(dev)
	if *trace {
		runner.Trace = os.Stderr
	}
	res, err := runner.Run(dev, dev.Geometry(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program completed in %.3f ms simulated time, %d reads\n",
		float64(res.Elapsed)/1e9, len(res.Reads))
	for i, data := range res.Reads {
		fmt.Printf("read %4d: %s\n", i, hex.EncodeToString(data))
	}
}
