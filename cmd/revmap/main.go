// revmap reverse-engineers the in-DRAM row address mapping and subarray
// boundaries of one bank, using single-sided RowHammer adjacency probing
// (paper Section 3.1 and footnote 3), then checks the recovered layout
// against the simulator's ground truth.
//
// Usage:
//
//	revmap [-chip paper|small] [-channel N] [-pc N] [-bank N]
package main

import (
	"flag"
	"fmt"
	"log"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("revmap: ")
	var (
		chip    = flag.String("chip", "small", "chip preset: paper or small (paper probes 16K rows; slow)")
		channel = flag.Int("channel", 0, "channel to probe")
		pc      = flag.Int("pc", 0, "pseudo channel to probe")
		bank    = flag.Int("bank", 0, "bank to probe")
	)
	flag.Parse()

	cfg := hbmrh.SmallChip()
	if *chip == "paper" {
		cfg = hbmrh.PaperChip()
	} else if *chip != "small" {
		log.Fatalf("unknown -chip %q", *chip)
	}

	h, err := hbmrh.NewHarnessFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ba := hbmrh.BankAddr{Channel: *channel, PseudoChannel: *pc, Bank: *bank}
	fmt.Printf("probing %v: single-sided hammering of every row, two data rounds each...\n", ba)

	rec, scheme, err := h.RecoverMapping(ba)
	if err != nil {
		log.Fatal(err)
	}

	sizes := rec.SubarraySizes()
	fmt.Printf("recovered %d subarrays, sizes: %v\n", len(sizes), sizes)
	fmt.Printf("classified row mapping scheme: %v\n", scheme)

	// Compare with the simulator's ground truth (a real attacker has no
	// such oracle; this validates the methodology end to end).
	truth := cfg.SubarraySizes
	match := len(truth) == len(sizes)
	if match {
		for i := range truth {
			if truth[i] != sizes[i] {
				match = false
				break
			}
		}
	}
	fmt.Printf("ground truth sizes:  %v\n", truth)
	fmt.Printf("ground truth scheme: %v\n", cfg.Mapping)
	if match && scheme == cfg.Mapping {
		fmt.Println("=> recovery matches ground truth exactly")
	} else {
		fmt.Println("=> MISMATCH against ground truth")
	}
}
