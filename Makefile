# Local and CI entry points. CI (.github/workflows/ci.yml) invokes these
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test bench bench-engine lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One-iteration pass over every benchmark: a smoke test that the bench
# harness still runs, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The engine baseline recorded in BENCH_engine.json.
bench-engine:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 3x .

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

ci: lint build test
