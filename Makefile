# Local and CI entry points. CI (.github/workflows/ci.yml) invokes these
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test bench bench-engine lint smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One-iteration pass over every benchmark: a smoke test that the bench
# harness still runs, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The engine baseline recorded in BENCH_engine.json.
bench-engine:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 3x .

# Fleet chipscan smoke: a 32-seed scan, 4 chips at a time, exporting the
# aggregated distributions — exercises the streaming reducer end to end.
smoke:
	$(GO) run ./cmd/chipscan -chip small -chips 32 -rows 2 -parallel 4 -csv /dev/null -json /dev/null

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

ci: lint build test smoke
