# Local and CI entry points. CI (.github/workflows/ci.yml) invokes these
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test bench bench-engine bench-scaling bench-query lint smoke paper-smoke torture ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One-iteration pass over every benchmark: a smoke test that the bench
# harness still runs, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The engine + sense + codec baselines: runs the suite and regenerates
# BENCH_engine.json, recording nproc/GOMAXPROCS so multicore captures are
# distinguishable from single-CPU container runs. Set BENCH_NOTE to
# describe the refresh.
bench-engine:
	sh scripts/bench_engine.sh

# The multicore scaling curve: chipscan-stream + sweep + contention
# benchmarks at GOMAXPROCS in {1,2,4,8} clamped to nproc, regenerating
# BENCH_scaling.json (schema in scripts/README.md).
bench-scaling:
	sh scripts/bench_scaling.sh

# The serving data plane's latency budget + ingest throughput:
# open-loop loadgen over the mixed endpoint set and the incremental-vs-
# full-rebuild ingest benchmark, regenerating BENCH_query.json (schema
# in scripts/README.md). Set BENCH_NOTE to describe the refresh.
bench-query:
	sh scripts/bench_query.sh

# Sharded-fleet smoke, byte-comparing sharded-vs-single-process output
# for two registry experiments (the distributable-fleet contract):
#
#   1. chipscan (the multichip registry entry): a 32-seed scan, 4 chips
#      at a time, once in a single process and once as four serialized
#      seed-range shards plus a merge.
#   2. rowpress (a newly lifted point-axis driver): once in a single
#      process under the default queue planner and once as two job-slice
#      shards under the weighted planner, merged through the generic
#      `characterize merge` with a shard glob — pinning that neither
#      sharding nor planner choice changes the artifacts.
#   3. the fleet control plane: the same rowpress study through
#      `characterize fleet` with 2 shard workers, with worker 0 killed
#      (-kill-after 0:1) after its first journaled chunk so the retry
#      resumes it from the journal — CSV, JSON and artifact must still
#      byte-match the single-process run from step 2 (DESIGN.md §10).
SMOKE_DIR := .smoke

smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/chipscan -chip small -chips 32 -rows 2 -parallel 4 \
		-csv $(SMOKE_DIR)/single.csv -json $(SMOKE_DIR)/single.json
	for i in 0 1 2 3; do \
		$(GO) run ./cmd/chipscan -chip small -chips 32 -rows 2 -parallel 4 \
			-shard $$i/4 -artifact $(SMOKE_DIR)/shard$$i.json >/dev/null || exit 1; \
	done
	$(GO) run ./cmd/chipscan merge -csv $(SMOKE_DIR)/merged.csv \
		-json $(SMOKE_DIR)/merged.json $(SMOKE_DIR)/shard*.json
	cmp $(SMOKE_DIR)/single.csv $(SMOKE_DIR)/merged.csv
	cmp $(SMOKE_DIR)/single.json $(SMOKE_DIR)/merged.json
	# smoke-parallel: the same 32-seed scan flat-out at one chip per CPU
	# (at least 8 so goroutines really interleave on small CI boxes) with
	# mutex profiling armed; byte-compare against the serial run so both
	# parallel nondeterminism and dead mutex profiling fail the smoke.
	p=$$(nproc); [ "$$p" -lt 8 ] && p=8; \
	$(GO) run ./cmd/chipscan -chip small -chips 32 -rows 2 -parallel $$p \
		-mutexprofile $(SMOKE_DIR)/chipscan-mutex.pprof \
		-csv $(SMOKE_DIR)/parallel.csv -json $(SMOKE_DIR)/parallel.json >/dev/null
	cmp $(SMOKE_DIR)/single.csv $(SMOKE_DIR)/parallel.csv
	cmp $(SMOKE_DIR)/single.json $(SMOKE_DIR)/parallel.json
	test -s $(SMOKE_DIR)/chipscan-mutex.pprof
	$(GO) run ./cmd/characterize -experiment rowpress -rows 2 -hammers 60000 \
		-csv $(SMOKE_DIR)/press.csv -json $(SMOKE_DIR)/press.json \
		-artifact $(SMOKE_DIR)/press.bin
	for i in 0 1; do \
		$(GO) run ./cmd/characterize -experiment rowpress -rows 2 -hammers 60000 \
			-planner weighted -shard $$i/2 \
			-artifact $(SMOKE_DIR)/press-shard$$i.json >/dev/null || exit 1; \
	done
	$(GO) run ./cmd/characterize merge -csv $(SMOKE_DIR)/press-merged.csv \
		-json $(SMOKE_DIR)/press-merged.json \
		-artifact $(SMOKE_DIR)/press-merged.bin \
		'$(SMOKE_DIR)/press-shard*.json'
	cmp $(SMOKE_DIR)/press.csv $(SMOKE_DIR)/press-merged.csv
	cmp $(SMOKE_DIR)/press.json $(SMOKE_DIR)/press-merged.json
	cmp $(SMOKE_DIR)/press.bin $(SMOKE_DIR)/press-merged.bin
	$(GO) run ./cmd/characterize fleet -experiment rowpress -rows 2 -hammers 60000 \
		-workers 2 -kill-after 0:1 -dir $(SMOKE_DIR)/fleet -progress \
		-csv $(SMOKE_DIR)/fleet.csv -json $(SMOKE_DIR)/fleet.json \
		-artifact $(SMOKE_DIR)/fleet.bin >/dev/null
	cmp $(SMOKE_DIR)/press.csv $(SMOKE_DIR)/fleet.csv
	cmp $(SMOKE_DIR)/press.json $(SMOKE_DIR)/fleet.json
	cmp $(SMOKE_DIR)/press.bin $(SMOKE_DIR)/fleet.bin
	$(GO) run ./cmd/resultsd -store $(SMOKE_DIR)/store -quiet \
		-query '/v1/summary' '$(SMOKE_DIR)/fleet/shard-*.json' \
		> $(SMOKE_DIR)/store.json
	cmp $(SMOKE_DIR)/press.json $(SMOKE_DIR)/store.json
	$(GO) run ./cmd/resultsd -store $(SMOKE_DIR)/store -quiet \
		-query '/v1/csv' > $(SMOKE_DIR)/store.csv
	cmp $(SMOKE_DIR)/press.csv $(SMOKE_DIR)/store.csv
	# Race-instrumented kill/resume + stall/retry: the fleet recovery
	# paths under the race detector, beyond what -kill-after above covers.
	$(GO) test -race -count=1 \
		-run 'TestFleetKillResumeByteIdentical|TestFleetStallKillsAndRetries' \
		./internal/fleet
	# Load-harness smoke against the store just built above: a fixed
	# closed-loop request count with the serving gates armed — zero
	# 4xx/5xx, warm-cache hit rate >= 0.9, and 304 revalidation
	# correctness (bodiless, only in answer to If-None-Match).
	$(GO) run ./cmd/loadgen -store $(SMOKE_DIR)/store -requests 400 \
		-concurrency 4 -gzip 0.25 -conditional 0.25 \
		-endpoints '/v1/summary,/v1/csv,/v1/render,/v1/artifact' \
		-check-304 -min-hit-rate 0.9 -max-5xx 0 -max-4xx 0
	rm -rf $(SMOKE_DIR)

# Crash-consistency torture: every registered failpoint site armed in
# turn against a full fleet → store-ingest → query cycle — workers
# killed mid-fsync, writes torn at a byte offset, spawns refused,
# renders poisoned — with the recovered outputs byte-compared to a
# fault-free run (DESIGN.md §13). Race-instrumented; a few seconds.
torture:
	$(GO) test -race -count=1 -run TestTortureAllSites -v ./internal/torture

# Reduced-budget paper suite on the paper-geometry chip: the nightly CI
# smoke (sweep + fig6 + trrstudy through the registry; ~5 s).
paper-smoke:
	$(GO) run ./cmd/characterize -chip paper -experiment paper \
		-rows 2 -bankrows 2 -hammers 30000 -iterations 60 -parallel 2

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

ci: lint build test smoke
