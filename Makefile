# Local and CI entry points. CI (.github/workflows/ci.yml) invokes these
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test bench bench-engine lint smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One-iteration pass over every benchmark: a smoke test that the bench
# harness still runs, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The engine + sense + codec baselines: runs the suite and regenerates
# BENCH_engine.json, recording nproc/GOMAXPROCS so multicore captures are
# distinguishable from single-CPU container runs. Set BENCH_NOTE to
# describe the refresh.
bench-engine:
	sh scripts/bench_engine.sh

# Fleet chipscan smoke: a 32-seed scan, 4 chips at a time, run once in a
# single process and once as four serialized seed-range shards plus a
# merge — the merged CSV/JSON must be byte-identical to the
# single-process exports (the distributable-fleet contract).
SMOKE_DIR := .smoke

smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/chipscan -chip small -chips 32 -rows 2 -parallel 4 \
		-csv $(SMOKE_DIR)/single.csv -json $(SMOKE_DIR)/single.json
	for i in 0 1 2 3; do \
		$(GO) run ./cmd/chipscan -chip small -chips 32 -rows 2 -parallel 4 \
			-shard $$i/4 -artifact $(SMOKE_DIR)/shard$$i.json >/dev/null || exit 1; \
	done
	$(GO) run ./cmd/chipscan merge -csv $(SMOKE_DIR)/merged.csv \
		-json $(SMOKE_DIR)/merged.json $(SMOKE_DIR)/shard*.json
	cmp $(SMOKE_DIR)/single.csv $(SMOKE_DIR)/merged.csv
	cmp $(SMOKE_DIR)/single.json $(SMOKE_DIR)/merged.json
	rm -rf $(SMOKE_DIR)

lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

ci: lint build test smoke
