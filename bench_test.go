package hbmrh_test

// Benchmark harness: one benchmark per paper artifact (Table 1 and
// Figs. 3-6 of Section 4, plus the Section 5 U-TRR study), each running a
// scaled-down but structurally complete regeneration of that artifact per
// iteration, plus ablation benchmarks for the design choices DESIGN.md
// calls out. Full-resolution regeneration is cmd/characterize and
// cmd/utrr-discover.

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	hbmrh "github.com/safari-repro/hbmrh"
)

func benchHarness(b *testing.B) *hbmrh.Harness {
	b.Helper()
	h, err := hbmrh.NewHarnessFromConfig(hbmrh.SmallChip())
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func midSubarrayRow(h *hbmrh.Harness) int {
	layout := h.Device().Config().Layout()
	return layout.Start(1) + layout.Size(1)/2
}

// BenchmarkTable1Patterns measures one full per-row BER experiment for
// each of Table 1's four data patterns.
func BenchmarkTable1Patterns(b *testing.B) {
	h := benchHarness(b)
	bank := hbmrh.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0}
	row := midSubarrayRow(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range hbmrh.Table1() {
			if _, err := h.BER(bank, row, p, hbmrh.DefaultHammers); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSweep runs the Figs. 3-5 generator at the given sampling density.
func benchSweep(b *testing.B, rowsPerRegion int) *hbmrh.Sweep {
	b.Helper()
	s, err := hbmrh.RunSweep(hbmrh.SweepOptions{
		Cfg:           hbmrh.SmallChip(),
		RowsPerRegion: rowsPerRegion,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig3BERByChannel regenerates Fig. 3 (BER box plots by channel
// and data pattern, plus headline ratios) from a fresh sweep.
func BenchmarkFig3BERByChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(b, 2)
		f := hbmrh.Fig3{Sweep: s}
		_ = f.Render()
		_ = f.Headlines()
	}
}

// BenchmarkFig4HCFirst regenerates Fig. 4 (HCfirst distributions).
func BenchmarkFig4HCFirst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(b, 2)
		f := hbmrh.Fig4{Sweep: s}
		_ = f.Render()
		_ = f.Headlines()
	}
}

// BenchmarkFig5RowProfile regenerates Fig. 5 (BER vs row address with
// subarray periodicity and the weak last subarray).
func BenchmarkFig5RowProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(b, 6)
		f := hbmrh.Fig5{Sweep: s}
		_ = f.Render()
		_ = f.Headlines()
	}
}

// BenchmarkFig6BankScatter regenerates Fig. 6 (per-bank mean BER vs CV
// over every bank of the stack).
func BenchmarkFig6BankScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := hbmrh.RunFig6(hbmrh.Fig6Options{
			Cfg:               hbmrh.SmallChip(),
			RowsPerBankRegion: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Render()
		_ = f.Headlines()
	}
}

// BenchmarkSec5UTRR regenerates the Section 5 TRR-uncovering study.
func BenchmarkSec5UTRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := hbmrh.RunTRRStudy(hbmrh.TRRStudyOptions{
			Cfg:        hbmrh.SmallChip(),
			Bank:       hbmrh.BankAddr{Channel: 1, PseudoChannel: 0, Bank: 0},
			Iterations: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !s.Periodic {
			b.Fatal("TRR period not uncovered")
		}
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md §5) ---

// BenchmarkAblationHammerFastPath measures a 4K-hammer program with the
// interpreter's bulk loop application enabled.
func BenchmarkAblationHammerFastPath(b *testing.B) {
	benchHammerPath(b, false)
}

// BenchmarkAblationHammerSlowPath measures the identical program with
// per-iteration execution, quantifying what the fast path buys.
func BenchmarkAblationHammerSlowPath(b *testing.B) {
	benchHammerPath(b, true)
}

func benchHammerPath(b *testing.B, disableFast bool) {
	d, err := hbmrh.Open(hbmrh.SmallChip())
	if err != nil {
		b.Fatal(err)
	}
	layout := d.Config().Layout()
	row := layout.Start(1) + layout.Size(1)/2
	bank := hbmrh.BankAddr{Channel: 0, PseudoChannel: 0, Bank: 0}
	m := d.Mapper()
	bd := hbmrh.NewBenderBuilder(d)
	bd.HammerDouble(bank, m.ToLogical(row-1), m.ToLogical(row+1), 4096)
	prog, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	runner := hbmrh.NewBenderRunner(d)
	runner.DisableFastPath = disableFast
	tm := d.Config().Timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(d, d.Geometry(), prog); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := d.AdvanceTime(tm.TRP); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkAblationECCOn measures the BER experiment with on-die ECC
// enabled (single-bit corrections at sense-out).
func BenchmarkAblationECCOn(b *testing.B) { benchECC(b, true) }

// BenchmarkAblationECCOff measures the identical experiment with ECC off,
// the paper's configuration.
func BenchmarkAblationECCOff(b *testing.B) { benchECC(b, false) }

func benchECC(b *testing.B, eccOn bool) {
	h := benchHarness(b) // harness disables ECC
	d := h.Device()
	if eccOn {
		for ch := 0; ch < d.Geometry().Channels; ch++ {
			if err := d.WriteModeRegister(ch, hbmrh.MRECC, hbmrh.MRECCEnable); err != nil {
				b.Fatal(err)
			}
		}
	}
	bank := hbmrh.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0}
	row := midSubarrayRow(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.BER(bank, row, hbmrh.Table1()[1], hbmrh.DefaultHammers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRefreshBudgetGuard measures the BER path with the
// 27 ms refresh-window guard active (the default) vs disabled.
func BenchmarkAblationRefreshBudgetGuard(b *testing.B) {
	for _, guard := range []bool{true, false} {
		name := "off"
		if guard {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			h := benchHarness(b)
			h.EnforceBudget = guard
			bank := hbmrh.BankAddr{Channel: 3, PseudoChannel: 0, Bank: 0}
			row := midSubarrayRow(h)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.BER(bank, row, hbmrh.Table1()[0], hbmrh.DefaultHammers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Engine benchmarks (the shared parallel execution engine) ---
// Baselines live in BENCH_engine.json; regenerate with `make bench-engine`.

// benchEngineSweep regenerates the Figs. 3-5 sweep at a fixed worker
// count; the serial/parallel pair quantifies multicore scaling of the
// engine's per-channel sharding.
func benchEngineSweep(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := hbmrh.RunSweep(hbmrh.SweepOptions{
			Cfg:           hbmrh.SmallChip(),
			RowsPerRegion: 4,
			Workers:       workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweepSerial runs the sweep on a single worker.
func BenchmarkEngineSweepSerial(b *testing.B) { benchEngineSweep(b, 1) }

// BenchmarkEngineSweepParallel runs the sweep with one worker per CPU.
func BenchmarkEngineSweepParallel(b *testing.B) { benchEngineSweep(b, 0) }

// BenchmarkEngineFig6Parallel exercises the engine's finest sharding:
// one job per bank across the whole stack.
func BenchmarkEngineFig6Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hbmrh.RunFig6(hbmrh.Fig6Options{
			Cfg:               hbmrh.SmallChip(),
			RowsPerBankRegion: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePoolCold pays full chip instantiation every run by
// draining the warmed-device pool first.
func BenchmarkEnginePoolCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hbmrh.DrainEnginePool()
		if _, err := hbmrh.RunSweep(hbmrh.SweepOptions{
			Cfg:           hbmrh.SmallChip(),
			RowsPerRegion: 2,
			Workers:       1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePoolWarm reuses pool-warmed devices across runs, the
// steady state of a figure pipeline; the delta against PoolCold is what
// device reuse buys per run.
func BenchmarkEnginePoolWarm(b *testing.B) {
	run := func() error {
		_, err := hbmrh.RunSweep(hbmrh.SweepOptions{
			Cfg:           hbmrh.SmallChip(),
			RowsPerRegion: 2,
			Workers:       1,
		})
		return err
	}
	if err := run(); err != nil { // warm the pool outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineChipscanStream measures the fleet path: chip instances
// measured in parallel and folded through the engine's ordered streaming
// reducer into per-region aggregates (the chipscan -chips pipeline).
func BenchmarkEngineChipscanStream(b *testing.B) {
	seeds := []uint64{101, 102, 103, 104, 105, 106}
	for i := 0; i < b.N; i++ {
		s, err := hbmrh.RunMultiChip(hbmrh.MultiChipOptions{
			Base:          hbmrh.SmallChip(),
			Seeds:         seeds,
			RowsPerRegion: 2,
			ChipWorkers:   4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Artifact.Groups) == 0 {
			b.Fatal("fleet aggregates missing")
		}
	}
}

// BenchmarkStreamCodec measures the shard serialization boundary: one
// sketched per-group accumulator (the unit a shard artifact carries per
// region×channel metric) round-tripping through the versioned binary
// codec, then merging into a second accumulator — the work `chipscan
// merge` pays per group per shard.
func BenchmarkStreamCodec(b *testing.B) {
	src := hbmrh.NewStatsStream(0, 1)
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 5000; i++ {
		src.Add(rng.Float64())
	}
	acc := hbmrh.NewStatsStream(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := src.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var dec hbmrh.StatsStream
		if err := dec.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
		acc.Merge(&dec)
	}
}

// --- Extension benchmarks (Section 6 future work, implemented) ---

// BenchmarkExtRowPress regenerates the aggressor-on-time study.
func BenchmarkExtRowPress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := hbmrh.RunRowPress(hbmrh.RowPressOptions{
			Cfg:             hbmrh.SmallChip(),
			Bank:            hbmrh.BankAddr{Channel: 7},
			Rows:            3,
			HoldMultipliers: []int{1, 4, 16},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = s.Render()
	}
}

// BenchmarkExtTempSweep regenerates the temperature-sensitivity study,
// PID settling included.
func BenchmarkExtTempSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := hbmrh.RunTempSweep(hbmrh.TempSweepOptions{
			Cfg:           hbmrh.SmallChip(),
			Bank:          hbmrh.BankAddr{Channel: 7},
			Rows:          3,
			TemperaturesC: []float64{55, 85, 95},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = s.Render()
	}
}

// BenchmarkExtCrossChannel regenerates the interference probe.
func BenchmarkExtCrossChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := hbmrh.RunCrossChannel(hbmrh.CrossChannelOptions{
			Cfg:              hbmrh.SmallChip(),
			AggressorChannel: 4,
			Rows:             2,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = s.Render()
	}
}

// BenchmarkExtAdaptiveDefense measures the guarded hammering path under
// the vulnerability-adaptive preventive-refresh policy.
func BenchmarkExtAdaptiveDefense(b *testing.B) {
	h, err := hbmrh.NewHarnessFromConfig(hbmrh.SmallChip())
	if err != nil {
		b.Fatal(err)
	}
	d := h.Device()
	guard := hbmrh.NewDefenseGuard(d, hbmrh.UniformPolicy{T: 8000})
	m := d.Mapper()
	row := midSubarrayRow(h)
	bank := hbmrh.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := guard.Hammer(bank, m.ToLogical(row-1), m.ToLogical(row+1), 64000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWriter is a reusable ResponseWriter for the hot-cache
// benchmarks: the header map persists across iterations (reset between
// them) and bodies are counted, not stored, so the measurement is the
// serving data plane rather than httptest.NewRecorder's per-iteration
// buffer growth.
type benchWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *benchWriter) WriteHeader(code int)        { w.status = code }
func (w *benchWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
	w.status, w.n = http.StatusOK, 0
}

// queryBenchHandler builds the shared fixture: a store from four fleet
// shards behind the query service, with one warm /v1/summary entry.
func queryBenchHandler(b *testing.B) http.Handler {
	b.Helper()
	st, err := hbmrh.OpenArtifactStore("")
	if err != nil {
		b.Fatal(err)
	}
	for shard := 0; shard < 4; shard++ {
		a, err := hbmrh.RunExperiment("rowpress", hbmrh.ExperimentOptions{
			Cfg: hbmrh.SmallChip(), Rows: 1, Hammers: 60000,
			Shard: shard, ShardCount: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.IngestArtifact(a); err != nil {
			b.Fatal(err)
		}
	}
	handler := hbmrh.NewQueryServer(st).Handler()
	warm := httptest.NewRecorder()
	handler.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/v1/summary", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", warm.Code, warm.Body.String())
	}
	return handler
}

// BenchmarkQueryHotCache measures the query service's cached read path:
// every iteration a full HTTP round trip that must be served from the
// generation-keyed variant cache without re-rendering — the path the
// ≤2 allocs/op pin in internal/query guards.
func BenchmarkQueryHotCache(b *testing.B) {
	handler := queryBenchHandler(b)
	req := httptest.NewRequest(http.MethodGet, "/v1/summary", nil)
	w := &benchWriter{h: make(http.Header, 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		handler.ServeHTTP(w, req)
		if w.status != http.StatusOK || w.n == 0 {
			b.Fatal("cache read failed")
		}
	}
}

// BenchmarkQueryHotCacheGzip is the same hit served from the
// pre-compressed variant: Accept-Encoding: gzip must cost a body copy,
// never a per-request compression.
func BenchmarkQueryHotCacheGzip(b *testing.B) {
	handler := queryBenchHandler(b)
	req := httptest.NewRequest(http.MethodGet, "/v1/summary", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	w := &benchWriter{h: make(http.Header, 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		handler.ServeHTTP(w, req)
		if w.status != http.StatusOK || w.n == 0 {
			b.Fatal("gzip cache read failed")
		}
	}
}

// BenchmarkQueryHotCache304 is the revalidation fast path: a matching
// If-None-Match answered 304 without touching either body.
func BenchmarkQueryHotCache304(b *testing.B) {
	handler := queryBenchHandler(b)
	probe := httptest.NewRecorder()
	handler.ServeHTTP(probe, httptest.NewRequest(http.MethodGet, "/v1/summary", nil))
	etag := probe.Header().Get("ETag")
	if etag == "" {
		b.Fatal("no ETag on the warm entry")
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/summary", nil)
	req.Header.Set("If-None-Match", etag)
	w := &benchWriter{h: make(http.Header, 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		handler.ServeHTTP(w, req)
		if w.status != http.StatusNotModified || w.n != 0 {
			b.Fatal("revalidation missed")
		}
	}
}
