#!/bin/sh
# Regenerates BENCH_engine.json from the engine + sense benchmark suite.
#
# Usage: scripts/bench_engine.sh [output.json]
#   BENCH_NOTE="..."    prose note recorded in the file (optional)
#   BENCHTIME=3x        -benchtime passed to go test (optional)
#
# The file records the machine context (nproc, GOMAXPROCS, CPU model) so
# the multicore speedup curve the ROADMAP asks for can be told apart from
# single-CPU container runs at a glance.
set -eu

out=${1:-BENCH_engine.json}
benchtime=${BENCHTIME:-3x}
pattern='BenchmarkEngine|BenchmarkStreamCodec|BenchmarkSenseAndRestore|BenchmarkSenseColdRows|BenchmarkProfileCompute|BenchmarkQuery'
command="go test -run '^\$' -bench '$pattern' -benchtime $benchtime -benchmem ./..."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./... | tee "$tmp"

nproc_val=$(nproc 2>/dev/null || echo 1)
goversion=$(go env GOVERSION)
goos=$(go env GOOS)
goarch=$(go env GOARCH)
cpu=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
date_val=$(date +%F)

# JSON-escape the free-text fields (backslashes and double quotes). They
# reach awk via ENVIRON, not -v, because -v reinterprets backslash
# escapes and would undo the escaping.
json_escape() { printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'; }
CPU_ESC=$(json_escape "$cpu")
NOTE_ESC=$(json_escape "${BENCH_NOTE:-}")
export CPU_ESC NOTE_ESC

awk -v nproc="$nproc_val" -v goversion="$goversion" -v goos="$goos" \
    -v goarch="$goarch" -v date="$date_val" \
    -v benchtime="$benchtime" -v command="$command" '
BEGIN { cpu = ENVIRON["CPU_ESC"]; note = ENVIRON["NOTE_ESC"] }
/^Benchmark/ && NF >= 4 {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	# With -benchmem the line carries "<B> B/op  <allocs> allocs/op";
	# record both so the 0-allocs-per-probe invariant is machine-checkable
	# from the JSON, not just test-asserted.
	if (NF >= 8 && $6 == "B/op" && $8 == "allocs/op")
		entries[++n] = sprintf("    { \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %d, \"b_per_op\": %s, \"allocs_per_op\": %s }", name, $2, $3, $5, $7)
	else
		entries[++n] = sprintf("    { \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %d }", name, $2, $3)
}
END {
	printf "{\n"
	printf "  \"suite\": \"engine\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"nproc\": %s,\n", nproc
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"command\": \"%s\",\n", command
	printf "  \"note\": \"%s\",\n", note
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++)
		printf "%s%s\n", entries[i], (i < n ? "," : "")
	printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out (nproc=$nproc_val)"
