#!/bin/sh
# Captures the multicore scaling curve into BENCH_scaling.json: the
# chipscan stream and sweep benchmarks plus the synthetic contention pair
# (sharded pool / lock-free reduce vs their pre-sharding baselines), each
# at GOMAXPROCS in {1, 2, 4, 8} clamped to nproc so the capture works on
# any box. Entries carry an explicit "gomaxprocs" field (the -N suffix go
# test appends under -cpu), so the speedup curve per benchmark is a
# straight group-by in jq.
#
# Usage: scripts/bench_scaling.sh [output.json]
#   BENCH_NOTE="..."    prose note recorded in the file (optional)
#   BENCHTIME=3x        -benchtime passed to go test (optional)
set -eu

out=${1:-BENCH_scaling.json}
benchtime=${BENCHTIME:-3x}
nproc_val=$(nproc 2>/dev/null || echo 1)

cpus=""
for c in 1 2 4 8; do
	[ "$c" -le "$nproc_val" ] && cpus="$cpus,$c"
done
cpus=${cpus#,}
[ -n "$cpus" ] || cpus=1

pattern='BenchmarkEngineChipscanStream$|BenchmarkEngineSweepParallel$|BenchmarkEnginePoolGetPut|BenchmarkEngineReduceContended'
command="go test -run '^\$' -bench '$pattern' -benchtime $benchtime -cpu $cpus ./..."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -cpu "$cpus" ./... | tee "$tmp"

goversion=$(go env GOVERSION)
goos=$(go env GOOS)
goarch=$(go env GOARCH)
cpu=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
date_val=$(date +%F)

json_escape() { printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'; }
CPU_ESC=$(json_escape "$cpu")
NOTE_ESC=$(json_escape "${BENCH_NOTE:-}")
export CPU_ESC NOTE_ESC

awk -v nproc="$nproc_val" -v goversion="$goversion" -v goos="$goos" \
    -v goarch="$goarch" -v date="$date_val" -v cpus="$cpus" \
    -v benchtime="$benchtime" -v command="$command" '
BEGIN { cpu = ENVIRON["CPU_ESC"]; note = ENVIRON["NOTE_ESC"] }
/^Benchmark/ && NF >= 4 {
	name = $1
	procs = 1
	if (match(name, /-[0-9]+$/)) {
		procs = substr(name, RSTART + 1)
		name = substr(name, 1, RSTART - 1)
	}
	entries[++n] = sprintf("    { \"name\": \"%s\", \"gomaxprocs\": %d, \"iterations\": %s, \"ns_per_op\": %d }", name, procs, $2, $3)
}
END {
	printf "{\n"
	printf "  \"suite\": \"scaling\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"nproc\": %s,\n", nproc
	printf "  \"gomaxprocs_list\": \"%s\",\n", cpus
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"command\": \"%s\",\n", command
	printf "  \"note\": \"%s\",\n", note
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++)
		printf "%s%s\n", entries[i], (i < n ? "," : "")
	printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out (nproc=$nproc_val, gomaxprocs=$cpus)"
