#!/bin/sh
# Regenerates BENCH_query.json: the serving data plane's latency budget
# (open-loop loadgen over the mixed endpoint set) plus the ingest
# throughput benchmark (incremental merge vs legacy full rebuild, with
# byte-identity cross-checked inside loadgen).
#
# Usage: scripts/bench_query.sh [output.json]
#   BENCH_NOTE="..."       prose note recorded in the file (optional)
#   LOADGEN_REQUESTS=N     serve-phase request count  (default 20000)
#   LOADGEN_RPS=N          serve-phase open-loop rate (default 2000)
#   LOADGEN_SHARDS=N       ingest-bench shard count   (default 256)
#
# The serve phase runs with the same acceptance gates the smoke target
# uses (hit rate, 4xx/5xx, 304 correctness), so a regression fails the
# regeneration rather than silently landing in the JSON. The ingest
# phase must show >= 5x over the full-rebuild path (ISSUE 10's floor).
set -eu

out=${1:-BENCH_query.json}
requests=${LOADGEN_REQUESTS:-20000}
rps=${LOADGEN_RPS:-2000}
shards=${LOADGEN_SHARDS:-256}
endpoints='/v1/summary?group-by=channel,/v1/csv,/v1/distributions?metric=wcdp_ber&group-by=channel,/v1/safety'

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/loadgen" ./cmd/loadgen

serve_json=$bindir/serve.json
ingest_json=$bindir/ingest.json

"$bindir/loadgen" -synthetic 32 -requests "$requests" -rps "$rps" \
	-concurrency 8 -gzip 0.3 -conditional 0.3 -seed 1 \
	-endpoints "$endpoints" \
	-min-hit-rate 0.95 -max-5xx 0 -max-4xx 0 -check-304 \
	-json > "$serve_json"

"$bindir/loadgen" -ingest-bench "$shards" -json > "$ingest_json"

speedup=$(sed -n 's/.*"speedup": *\([0-9.]*\).*/\1/p' "$ingest_json")
if [ -z "$speedup" ] || [ "$(printf '%.0f' "$speedup")" -lt 5 ]; then
	echo "bench_query: ingest speedup ${speedup:-?}x is below the 5x floor" >&2
	exit 1
fi

nproc_val=$(nproc 2>/dev/null || echo 1)
goversion=$(go env GOVERSION)
goos=$(go env GOOS)
goarch=$(go env GOARCH)
cpu=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
date_val=$(date +%F)

json_escape() { printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'; }
cpu_esc=$(json_escape "$cpu")
note_esc=$(json_escape "${BENCH_NOTE:-}")

serve=$(cat "$serve_json")
ingest=$(cat "$ingest_json")
cat > "$out" <<EOF
{
  "suite": "query",
  "date": "$date_val",
  "go": "$goversion",
  "goos": "$goos",
  "goarch": "$goarch",
  "cpu": "$cpu_esc",
  "nproc": $nproc_val,
  "note": "$note_esc",
  "serve": $serve,
  "ingest_bench": $ingest
}
EOF

echo "wrote $out (nproc=$nproc_val, ingest speedup ${speedup}x)"
