// Quickstart: open a simulated HBM2 chip, hammer one victim row
// double-sided the way the paper does (Table 1 Rowstripe1 pattern,
// 256K hammers), and show the induced bitflips.
package main

import (
	"fmt"
	"log"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	// SmallChip has the paper chip's channel-level behaviour at a
	// fraction of the size; swap in hbmrh.PaperChip() for full scale.
	harness, err := hbmrh.NewHarnessFromConfig(hbmrh.SmallChip())
	if err != nil {
		log.Fatal(err)
	}
	dev := harness.Device()
	fmt.Printf("opened simulated HBM2 stack: %d channels x %d pseudo channels x %d banks x %d rows\n",
		dev.Geometry().Channels, dev.Geometry().PseudoChannels,
		dev.Geometry().Banks, dev.Geometry().Rows)

	// Channel 7 is the most RowHammer-vulnerable channel of the chip.
	bank := hbmrh.BankAddr{Channel: 7, PseudoChannel: 0, Bank: 0}
	layout := dev.Config().Layout()
	victim := layout.Start(1) + layout.Size(1)/2 // a mid-subarray row

	for _, pattern := range hbmrh.Table1() {
		res, err := harness.BER(bank, victim, pattern, hbmrh.DefaultHammers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s victim=0x%02X aggressors=0x%02X: %4d bitflips in %d cells (BER %.3f%%), %.2f ms\n",
			pattern.Name, pattern.Victim, pattern.Aggressor,
			res.Flips, res.Bits, res.BER()*100, float64(res.Elapsed)/1e9)
	}

	hc, found, err := harness.HCFirst(bank, victim, hbmrh.Table1()[1], hbmrh.DefaultHammers)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Printf("HCfirst (Rowstripe1): first bitflip after ~%d hammers\n", hc)
	} else {
		fmt.Println("no bitflip within 256K hammers on this row")
	}
}
