// TRR discovery: reproduce Section 5 of the paper. The U-TRR methodology
// uses data-retention failures as a side channel to detect when the
// chip's undisclosed Target Row Refresh mechanism refreshes a victim row,
// exposing that it fires once every 17 periodic REF commands.
package main

import (
	"fmt"
	"log"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	study, err := hbmrh.RunTRRStudy(hbmrh.TRRStudyOptions{
		Cfg:        hbmrh.SmallChip(),
		Bank:       hbmrh.BankAddr{Channel: 1, PseudoChannel: 0, Bank: 2},
		Iterations: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(study.Render())

	if study.Periodic {
		fmt.Printf("\nconclusion: proprietary TRR uncovered, victim refresh every %d REFs"+
			" (the paper observes 17, resembling U-TRR's Vendor C)\n", study.Period)
	}

	// Control: a chip without the proprietary mitigation shows decay in
	// every iteration.
	cfg := hbmrh.SmallChip()
	cfg.TRR.Enabled = false
	control, err := hbmrh.RunTRRStudy(hbmrh.TRRStudyOptions{
		Cfg:        cfg,
		Bank:       hbmrh.BankAddr{Channel: 1, PseudoChannel: 0, Bank: 2},
		Iterations: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontrol chip without TRR: %d victim refreshes in %d iterations\n",
		len(control.Result.Fires()), len(control.Result.Refreshed))
}
