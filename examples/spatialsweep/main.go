// Spatial sweep: a scaled-down run of the paper's Section 4 study —
// BER and HCfirst across channels, data patterns and rows — rendering
// miniature versions of Figs. 3, 4 and 5 plus their headline numbers.
package main

import (
	"fmt"
	"log"
	"os"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	fmt.Println("note: this demo runs the scaled-down SmallChip; shapes and orderings match")
	fmt.Println("the paper, while absolute HCfirst values sit higher (fewer cells per row).")
	fmt.Println("Use `go run ./cmd/calibrate` for the full-geometry paper-number comparison.")
	fmt.Println()
	// The sweep runs on the shared execution engine: one worker per CPU
	// by default, with per-channel progress and results identical to a
	// single-worker run.
	sweep, err := hbmrh.RunSweep(hbmrh.SweepOptions{
		Cfg:           hbmrh.SmallChip(),
		RowsPerRegion: 16, // sample 16 victims per region; 0 tests every row
		Progress: func(p hbmrh.EngineProgress) {
			fmt.Fprintf(os.Stderr, "sweep: %d/%d channels\n", p.Done, p.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := hbmrh.EngineStats()
	fmt.Printf("engine pool: %d devices built, %d warm reuses\n\n", st.Created, st.Reused)

	fig3 := hbmrh.Fig3{Sweep: sweep}
	fmt.Print(fig3.Render())
	h3 := fig3.Headlines()
	fmt.Printf("\nchannel mean WCDP BER (%%): ")
	for ch, m := range h3.WCDPMeanBER {
		fmt.Printf("ch%d=%.2f ", ch, m)
	}
	fmt.Printf("\nmost/least vulnerable channel ratio: %.2fx (paper: 2.03x)\n", h3.MaxOverMinWCDP)
	fmt.Printf("max cross-channel BER spread: %.0f%% (paper: up to 79%%)\n\n", h3.MaxSpreadPct)

	fig4 := hbmrh.Fig4{Sweep: sweep}
	fmt.Print(fig4.Render())
	h4 := fig4.Headlines()
	fmt.Printf("\nminimum HCfirst observed: %d (paper: 14531)\n", h4.MinHCFirst)
	fmt.Printf("ch0 mean HCfirst Rowstripe0 vs Rowstripe1: %.0f vs %.0f (paper: 57925 vs 79179)\n\n",
		h4.Ch0Rowstripe0, h4.Ch0Rowstripe1)

	fig5 := hbmrh.Fig5{Sweep: sweep}
	fmt.Print(fig5.Render())
	h5 := fig5.Headlines()
	fmt.Printf("\nlast-subarray BER vs rest: %.2fx (paper: substantially weaker)\n", h5.LastSubarrayRatio)
	fmt.Printf("mid-subarray BER vs edges: %.2fx (paper: BER peaks mid-subarray)\n", h5.MidOverEdge)
}
