// Adaptive defense: the paper's second implication. "An RH defense
// mechanism can adapt itself to the heterogeneous distribution of the RH
// vulnerability across channels and subarrays, which may allow the
// defense mechanism to more efficiently prevent RH bitflips."
//
// This example characterizes each channel's minimum HCfirst, builds two
// controller-side preventive-refresh policies — a uniform one derived
// from the worst channel, and an adaptive per-channel one — and subjects
// both to the same multi-channel hammering attack. Both prevent every
// bitflip; the adaptive policy spends markedly fewer preventive
// refreshes.
package main

import (
	"fmt"
	"log"

	hbmrh "github.com/safari-repro/hbmrh"
)

func main() {
	cfg := hbmrh.SmallChip()

	// Step 1: characterize (the defender's calibration pass).
	h, err := hbmrh.NewHarnessFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	layout := cfg.Layout()
	probe := layout.Start(1) + layout.Size(1)/2
	profile := make([]int, cfg.Geometry.Channels)
	for ch := range profile {
		minHC := hbmrh.DefaultHammers
		for i := 0; i < 3; i++ {
			w, err := h.WCDP(hbmrh.BankAddr{Channel: ch}, probe+5*i, hbmrh.DefaultHammers)
			if err != nil {
				log.Fatal(err)
			}
			if w.Found && w.HCFirst < minHC {
				minHC = w.HCFirst
			}
		}
		profile[ch] = minHC
		fmt.Printf("channel %d: min HCfirst ~%d\n", ch, minHC)
	}

	// Step 2: build the two policies.
	worst := profile[0]
	for _, hc := range profile {
		if hc < worst {
			worst = hc
		}
	}
	uniform := hbmrh.UniformPolicy{T: hbmrh.SafetyFromHCFirst(worst)}
	adaptive := hbmrh.AdaptivePolicy{PerChannel: make([]int, len(profile))}
	for ch, hc := range profile {
		adaptive.PerChannel[ch] = hbmrh.SafetyFromHCFirst(hc)
	}

	// Step 3: attack every channel under each policy.
	attack := func(policy hbmrh.DefensePolicy) (int, int64) {
		hh, err := hbmrh.NewHarnessFromConfig(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dev := hh.Device()
		guard := hbmrh.NewDefenseGuard(dev, policy)
		m := dev.Mapper()
		pattern := make([]byte, dev.Geometry().RowBytes())
		for i := range pattern {
			pattern[i] = 0xFF
		}
		flips := 0
		for ch := 0; ch < cfg.Geometry.Channels; ch++ {
			b := hbmrh.BankAddr{Channel: ch}
			lv := m.ToLogical(probe)
			if err := hbmrh.WriteRow(dev, b, lv, pattern); err != nil {
				log.Fatal(err)
			}
			if err := guard.Hammer(b, m.ToLogical(probe-1), m.ToLogical(probe+1),
				3*hbmrh.DefaultHammers); err != nil {
				log.Fatal(err)
			}
			got, err := hbmrh.ReadRow(dev, b, lv)
			if err != nil {
				log.Fatal(err)
			}
			flips += hbmrh.CountMismatches(got, pattern)
		}
		return flips, guard.Stats().PreventiveRefreshes
	}

	fmt.Println("\nattack: 3x256K double-sided hammers on one victim per channel")
	uf, ur := attack(uniform)
	fmt.Printf("uniform  policy (T=%6d everywhere): %d bitflips, %5d preventive refreshes\n",
		uniform.T, uf, ur)
	af, ar := attack(adaptive)
	fmt.Printf("adaptive policy (per-channel T):      %d bitflips, %5d preventive refreshes\n", af, ar)
	if uf == 0 && af == 0 && ar < ur {
		fmt.Printf("\n=> equal protection, %.0f%% fewer preventive refreshes by adapting to\n", 100*(1-float64(ar)/float64(ur)))
		fmt.Println("   the per-channel vulnerability profile (the paper's defense implication)")
	}
}
