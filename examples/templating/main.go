// Memory templating: the paper's attack implication. An attacker who
// knows the per-channel RowHammer vulnerability profile templates memory
// (scans for exploitable bitflips) in the most vulnerable channel first,
// finding usable flips faster and attacking with a smaller hammer count.
//
// This example compares templating the most vulnerable channel (7)
// against the least vulnerable one (0) on the simulated chip, counting
// how much simulated time each needs to collect a budget of exploitable
// victim rows.
package main

import (
	"fmt"
	"log"

	hbmrh "github.com/safari-repro/hbmrh"
)

const (
	flipBudget = 12    // exploitable victim rows the attacker wants
	hammers    = 96000 // per-row hammer budget during templating
)

func template(channel int) (rowsScanned int, elapsedMS float64, err error) {
	harness, err := hbmrh.NewHarnessFromConfig(hbmrh.SmallChip())
	if err != nil {
		return 0, 0, err
	}
	dev := harness.Device()
	bank := hbmrh.BankAddr{Channel: channel, PseudoChannel: 0, Bank: 0}
	pattern := hbmrh.Table1()[1] // Rowstripe1: strongest in channel 7
	start := dev.Now()

	found := 0
	for phys := 1; phys < dev.Geometry().Rows-1 && found < flipBudget; phys++ {
		res, err := harness.BER(bank, phys, pattern, hammers)
		if err != nil {
			return 0, 0, err
		}
		rowsScanned++
		if res.Flips > 0 {
			found++
		}
	}
	if found < flipBudget {
		return rowsScanned, 0, fmt.Errorf("channel %d: only %d exploitable rows found", channel, found)
	}
	return rowsScanned, float64(dev.Now()-start) / 1e9, nil
}

func main() {
	fmt.Printf("templating goal: %d exploitable victim rows at %d hammers per probe\n\n", flipBudget, hammers)
	var base float64
	for _, ch := range []int{0, 7} {
		rows, ms, err := template(ch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("channel %d: scanned %3d rows, simulated templating time %8.1f ms\n", ch, rows, ms)
		if ch == 0 {
			base = ms
		} else if ms > 0 {
			fmt.Printf("\nspeedup from picking the most vulnerable channel: %.1fx\n", base/ms)
			fmt.Println("(the paper: an attack can use the most vulnerable channel to accelerate memory templating)")
		}
	}
}
