// Package hbmrh reproduces "An Experimental Analysis of RowHammer in HBM2
// DRAM Chips" (DSN 2023) as a self-contained Go library.
//
// Because the study is hardware-gated (it characterizes a real HBM2 stack
// on an FPGA testing infrastructure), this library ships a faithful
// simulated substrate — a cycle-timed HBM2 device model with a
// physically-motivated RowHammer/retention fault model, an in-DRAM TRR
// mitigation, a DRAM-Bender-style program layer, and a thermal rig — and
// the paper's full characterization pipeline on top of it:
//
//   - Open a chip with Open(PaperChip()) or Open(SmallChip()).
//   - Per-row measurements (BER, HCfirst, WCDP) via NewHarness.
//   - Figure-level studies via RunSweep / Fig3 / Fig4 / Fig5 / RunFig6.
//   - The Section 5 TRR discovery via RunTRRStudy.
//   - Row-mapping reverse engineering via Harness.RecoverMapping.
//
// The package is a thin facade over the internal subsystems; see DESIGN.md
// for the system inventory and EXPERIMENTS.md for paper-vs-measured
// results.
package hbmrh

import (
	"github.com/safari-repro/hbmrh/internal/addr"
	"github.com/safari-repro/hbmrh/internal/bender"
	"github.com/safari-repro/hbmrh/internal/config"
	"github.com/safari-repro/hbmrh/internal/core"
	"github.com/safari-repro/hbmrh/internal/defense"
	"github.com/safari-repro/hbmrh/internal/engine"
	"github.com/safari-repro/hbmrh/internal/experiments"
	"github.com/safari-repro/hbmrh/internal/fleet"
	"github.com/safari-repro/hbmrh/internal/hbm"
	"github.com/safari-repro/hbmrh/internal/mapping"
	"github.com/safari-repro/hbmrh/internal/query"
	"github.com/safari-repro/hbmrh/internal/results"
	"github.com/safari-repro/hbmrh/internal/retention"
	"github.com/safari-repro/hbmrh/internal/stats"
	"github.com/safari-repro/hbmrh/internal/store"
	"github.com/safari-repro/hbmrh/internal/thermal"
	"github.com/safari-repro/hbmrh/internal/utrr"
)

// Device and addressing.
type (
	// Device is a simulated HBM2 stack exposing the memory controller's
	// command-level interface (ACT/PRE/RD/WR/REF/MRS) with strict JESD235
	// timing checks.
	Device = hbm.Device
	// Config holds the full device + fault-model parameter set.
	Config = config.Config
	// Geometry describes stack dimensions.
	Geometry = addr.Geometry
	// BankAddr identifies one bank (channel, pseudo channel, bank).
	BankAddr = addr.BankAddr
	// RowAddr identifies one row.
	RowAddr = addr.RowAddr
)

// PaperChip returns the configuration of the chip characterized in the
// paper: a 4 GiB stack with 8 channels, 2 pseudo channels, 16 banks,
// 16384 rows and 32 columns, with the fault model calibrated to the
// paper's reported numbers.
func PaperChip() *Config { return config.PaperChip() }

// SmallChip returns a scaled-down chip with the same channel-level
// behaviour for fast experimentation.
func SmallChip() *Config { return config.SmallChip() }

// Open powers up a simulated chip.
func Open(cfg *Config) (*Device, error) { return hbm.New(cfg) }

// Host-level row helpers (timing-correct ACT/RD/WR/PRE sequences).
var (
	// WriteRow writes a full row image.
	WriteRow = hbm.WriteRow
	// ReadRow reads a full row image; pending bitflips materialize at the
	// activation, as in real DRAM.
	ReadRow = hbm.ReadRow
	// RefreshRow refreshes one row via activate + precharge.
	RefreshRow = hbm.RefreshRow
	// CountMismatches counts differing bits between two row images.
	CountMismatches = hbm.CountMismatches
)

// Mode register constants (the paper disables ECC through MRECC).
const (
	MRECC       = hbm.MRECC
	MRECCEnable = hbm.MRECCEnable
)

// Characterization methodology (Section 3.1).
type (
	// Harness drives per-row RowHammer experiments through DRAM Bender
	// programs: BER, HCfirst, WCDP, and adjacency probing.
	Harness = core.Harness
	// Pattern is a Table 1 data pattern.
	Pattern = core.Pattern
	// Region is a row range within a bank.
	Region = core.Region
	// BERResult is one BER measurement.
	BERResult = core.BERResult
	// WCDPResult is a row's worst-case data pattern selection.
	WCDPResult = core.WCDPResult
)

// NewHarness prepares a device for characterization (disabling ECC, as
// the paper's setup does).
func NewHarness(d *Device) (*Harness, error) { return core.NewHarness(d) }

// NewHarnessFromConfig builds a fresh device plus harness.
func NewHarnessFromConfig(cfg *Config) (*Harness, error) { return core.NewHarnessFromConfig(cfg) }

// Table1 returns the paper's four data patterns.
func Table1() []Pattern { return core.Table1() }

// ExtendedPatterns returns the richer pattern set the paper's future
// work calls for (solid and column-stripe patterns).
func ExtendedPatterns() []Pattern { return core.ExtendedPatterns() }

// Regions returns the paper's first/middle/last test regions for a bank
// of the given row count.
func Regions(rows int) []Region { return core.Regions(rows) }

// DefaultHammers is the paper's hammer count (256K).
const DefaultHammers = core.DefaultHammers

// Parallel execution engine. Every study driver runs on the shared
// engine: deterministic work partitioning (results are byte-identical
// for Workers=1 and Workers=N under the same seed), context cancellation
// between jobs, progress callbacks, and a warmed-device pool reused
// across runs. The knobs surface as Workers/Ctx/Progress fields on each
// study's options.
type (
	// EngineProgress is one progress update of a running study.
	EngineProgress = engine.Progress
	// EngineProgressFunc receives serialized progress updates.
	EngineProgressFunc = engine.ProgressFunc
	// EnginePoolStats counts warmed-device reuse in the shared pool.
	EnginePoolStats = engine.PoolStats
)

// EngineStats snapshots the shared device pool's reuse counters.
func EngineStats() EnginePoolStats { return engine.SharedPool.Stats() }

// EnginePlanner selects how a run's jobs are assigned to workers;
// planner choice never changes outputs, only schedules.
type EnginePlanner = engine.Planner

// The engine's job planners.
const (
	// PlanQueue pulls jobs from one shared counter (the default).
	PlanQueue = engine.PlanQueue
	// PlanContiguous splits jobs into one contiguous block per worker.
	PlanContiguous = engine.PlanContiguous
	// PlanWeighted balances contiguous blocks by per-job cost estimates.
	PlanWeighted = engine.PlanWeighted
	// PlanStealing is the in-process work-stealing queue.
	PlanStealing = engine.PlanStealing
)

// ParsePlanner parses a planner flag value ("queue", "contiguous",
// "weighted", "stealing").
func ParsePlanner(s string) (EnginePlanner, error) { return engine.ParsePlanner(s) }

// DrainEnginePool releases every warmed device cached by the shared
// pool, e.g. between studies of unrelated chip designs.
func DrainEnginePool() { engine.SharedPool.Drain() }

// Figure-level studies (Section 4) and the TRR study (Section 5).
type (
	// SweepOptions configures the shared spatial sweep behind Figs. 3-5.
	SweepOptions = experiments.SweepOptions
	// Sweep is the spatial dataset.
	Sweep = experiments.Sweep
	// RowResult is one victim row's measurements.
	RowResult = experiments.RowResult
	// Fig3 is the BER-by-channel/pattern figure.
	Fig3 = experiments.Fig3
	// Fig4 is the HCfirst figure.
	Fig4 = experiments.Fig4
	// Fig5 is the BER-vs-row-address figure.
	Fig5 = experiments.Fig5
	// Fig6 is the per-bank scatter figure.
	Fig6 = experiments.Fig6
	// Fig6Options configures the per-bank study.
	Fig6Options = experiments.Fig6Options
	// TRRStudy is the Section 5 result.
	TRRStudy = experiments.TRRStudy
	// TRRStudyOptions configures the Section 5 study.
	TRRStudyOptions = experiments.TRRStudyOptions
)

// RunSweep measures BER and HCfirst for sampled rows in every channel.
func RunSweep(o SweepOptions) (*Sweep, error) { return experiments.RunSweep(o) }

// RunFig6 measures per-bank BER statistics across the whole stack.
func RunFig6(o Fig6Options) (*Fig6, error) { return experiments.RunFig6(o) }

// RunTRRStudy reproduces the Section 5 U-TRR experiment.
func RunTRRStudy(o TRRStudyOptions) (*TRRStudy, error) { return experiments.RunTRRStudy(o) }

// Extension studies implementing the paper's Section 6 future work.
type (
	// RowPressOptions configures the aggressor-on-time study.
	RowPressOptions = experiments.RowPressOptions
	// RowPressStudy sweeps hold time vs HCfirst.
	RowPressStudy = experiments.RowPressStudy
	// TempSweepOptions configures the temperature study.
	TempSweepOptions = experiments.TempSweepOptions
	// TempSweepStudy sweeps chip temperature vs BER.
	TempSweepStudy = experiments.TempSweepStudy
	// CrossChannelOptions configures the interference probe.
	CrossChannelOptions = experiments.CrossChannelOptions
	// CrossChannelStudy probes vertical die-to-die interference.
	CrossChannelStudy = experiments.CrossChannelStudy
)

// RunRowPress sweeps aggressor-on time against HCfirst.
func RunRowPress(o RowPressOptions) (*RowPressStudy, error) { return experiments.RunRowPress(o) }

// RunTempSweep measures RowHammer BER across PID-settled temperatures.
func RunTempSweep(o TempSweepOptions) (*TempSweepStudy, error) { return experiments.RunTempSweep(o) }

// RunCrossChannel probes for cross-channel RowHammer interference.
func RunCrossChannel(o CrossChannelOptions) (*CrossChannelStudy, error) {
	return experiments.RunCrossChannel(o)
}

// TRR bypass study (the Section 5 attack implication).
type (
	// TRRBypassOptions configures the sampler-blinding study.
	TRRBypassOptions = experiments.TRRBypassOptions
	// TRRBypassStudy compares naive vs decoy-assisted hammering under
	// nominal refresh.
	TRRBypassStudy = experiments.TRRBypassStudy
)

// RunTRRBypass shows that the uncovered mechanism protects naive attacks
// but is defeated by a decoy activation before every REF.
func RunTRRBypass(o TRRBypassOptions) (*TRRBypassStudy, error) {
	return experiments.RunTRRBypass(o)
}

// U-TRR probe study (the Section 5 follow-up: how far the victim refresh
// reaches and how deep the sampler is).
type (
	// UTRRProbeOptions configures the probe study.
	UTRRProbeOptions = experiments.UTRRProbeOptions
	// UTRRProbeStudy reports the TRR neighbor radius and sampler depth.
	UTRRProbeStudy = experiments.UTRRProbeStudy
)

// RunUTRRProbe measures the uncovered TRR mechanism's victim-refresh
// radius and sampler depth on fresh devices.
func RunUTRRProbe(o UTRRProbeOptions) (*UTRRProbeStudy, error) {
	return experiments.RunUTRRProbe(o)
}

// Multi-chip study (future work 1: more chips, statistical significance),
// built for fleet scale: per-chip row samples stream into region×channel
// accumulators as chips complete, so a 200-seed scan aggregates in
// O(regions × channels) resident sample memory with byte-identical output
// at any ChipWorkers count. The aggregates live in a serializable results
// Artifact, so a scan can run as contiguous seed-range shards on many
// machines and merge back byte-identically (see MergeArtifacts).
type (
	// MultiChipOptions configures the chip-to-chip study.
	MultiChipOptions = experiments.MultiChipOptions
	// MultiChipStudy compares headline numbers across chip instances and
	// carries the fleet-level aggregates as a results artifact.
	MultiChipStudy = experiments.MultiChipStudy
	// ChipSummary is one chip's fixed-size headline numbers.
	ChipSummary = experiments.ChipSummary
)

// RunMultiChip reruns the headline measurements across several simulated
// chip instances (seeds).
func RunMultiChip(o MultiChipOptions) (*MultiChipStudy, error) {
	return experiments.RunMultiChip(o)
}

// StudyFromArtifact reconstructs a renderable multi-chip study from a
// loaded (typically merged) artifact.
func StudyFromArtifact(a *ResultsArtifact, gb ResultsGroupBy) *MultiChipStudy {
	return experiments.StudyFromArtifact(a, gb)
}

// The experiment registry: every study in the repo registers as a named
// experiment that decomposes into a plan of indexed jobs plus a
// deterministic fold into a results artifact, so every study — not just
// the fleet scan — shards with -shard i/N, serializes artifacts, merges
// with conflict checking, and exports through the shared CSV/JSON path.
type (
	// Experiment is one registered study.
	Experiment = experiments.Experiment
	// ExperimentOptions is the uniform knob set of a registry run.
	ExperimentOptions = experiments.Options
	// ExperimentJob is one schedulable unit of an experiment plan.
	ExperimentJob = experiments.Job
	// ExperimentPlan is an experiment decomposed into jobs plus its fold.
	ExperimentPlan = experiments.Plan
)

// Experiments returns every registered experiment, sorted by name.
func Experiments() []*Experiment { return experiments.All() }

// LookupExperiment resolves a registry name.
func LookupExperiment(name string) (*Experiment, error) { return experiments.Lookup(name) }

// RunExperiment plans, shards and executes a registered experiment; the
// artifact is byte-identical for any parallelism and planner, and all
// shards of one option set merge back into the unsharded artifact.
func RunExperiment(name string, o ExperimentOptions) (*ResultsArtifact, error) {
	return experiments.Run(name, o)
}

// RenderExperimentArtifact renders an artifact with its experiment's
// registered renderer (generic distribution render for unknown tools).
func RenderExperimentArtifact(a *ResultsArtifact) string { return experiments.Render(a) }

// The fleet control plane: one coordinator partitions a registered
// experiment across shard worker processes, streams their progress,
// replaces dead or straggling workers (relaunches resume from on-disk
// journals), and auto-merges the shard artifacts into output
// byte-identical to a single-process run. See DESIGN.md §10 for the
// worker protocol and the byte-identity argument.
type (
	// FleetSpec configures one fleet run: the study, the worker count,
	// checkpoint granularity, retry budget and straggler gate.
	FleetSpec = fleet.Spec
	// FleetStudy is the serializable experiment selection forwarded to
	// every fleet worker.
	FleetStudy = fleet.Study
	// FleetLauncher starts shard workers; the default launches local
	// subprocesses of the current binary, and remote schemes (SSH, a
	// scheduler) plug in by implementing the same argv contract.
	FleetLauncher = fleet.Launcher
)

// FleetWorkerCommand is the subcommand under which binaries embedding
// the fleet must dispatch to FleetWorkerMain.
const FleetWorkerCommand = fleet.WorkerCommand

// RunFleet executes a fleet run and returns the merged artifact.
func RunFleet(s FleetSpec) (*ResultsArtifact, error) { return fleet.Run(s) }

// FleetWorkerMain is the worker process entry point; host binaries
// dispatch their FleetWorkerCommand argv to it and exit with its return
// value.
func FleetWorkerMain(args []string) int { return fleet.WorkerMain(args) }

// The artifact store and its query service (DESIGN.md §11): a
// content-addressed, append-only store of shard artifacts with
// conflict-checked incremental merge, and an HTTP/JSON read side whose
// responses are byte-identical to `characterize` renders and cached per
// (corpus, generation, endpoint, params) with single-flight dedup.
type (
	// ArtifactStore is the content-addressed shard artifact store.
	ArtifactStore = store.Store
	// StoreIngestResult reports what one store ingest did.
	StoreIngestResult = store.IngestResult
	// StoreSnapshot is an immutable read view of one corpus: its sealed
	// merged artifact plus membership and generation bookkeeping.
	StoreSnapshot = store.Snapshot
	// QueryServer serves the query endpoint catalog over one store.
	QueryServer = query.Server
)

// OpenArtifactStore opens (or creates) the store at dir, replaying any
// persisted objects; dir "" opens an in-memory store.
func OpenArtifactStore(dir string) (*ArtifactStore, error) { return store.Open(dir) }

// NewQueryServer returns the HTTP query service over st.
func NewQueryServer(st *ArtifactStore) *QueryServer { return query.New(st) }

// Unified results layer: every driver that produces distributions emits
// this serializable artifact schema — provenance metadata (config hash,
// seed range, code version, format version), an aggregation axis, and
// mergeable streaming accumulators — so shard outputs from different
// processes and machines merge with conflict checking and render through
// one CSV/JSON path.
type (
	// ResultsArtifact is one serializable results payload.
	ResultsArtifact = results.Artifact
	// ResultsMeta is an artifact's provenance and merge-compatibility
	// metadata.
	ResultsMeta = results.Meta
	// ResultsGroup is one aggregation cell (key + metric streams).
	ResultsGroup = results.Group
	// ResultsKey identifies an aggregation group.
	ResultsKey = results.Key
	// ResultsGroupBy selects an aggregation axis.
	ResultsGroupBy = results.GroupBy
)

// Aggregation axes of the results layer.
const (
	// GroupByRegion groups by paper region (first/middle/last).
	GroupByRegion = results.ByRegion
	// GroupByChannel groups by HBM2 channel, the paper's first-order
	// vulnerability axis.
	GroupByChannel = results.ByChannel
	// GroupByRegionChannel is the finest axis, one group per
	// region×channel cell.
	GroupByRegionChannel = results.ByRegionChannel
)

// ParseGroupBy parses an axis flag value ("region", "channel",
// "region-channel").
func ParseGroupBy(s string) (ResultsGroupBy, error) { return results.ParseGroupBy(s) }

// ReadArtifact loads and validates an artifact file written by
// ResultsArtifact.WriteFile.
func ReadArtifact(path string) (*ResultsArtifact, error) { return results.ReadFile(path) }

// MergeArtifacts folds shard b into a after verifying format, tool,
// code-version, config-hash and axis compatibility plus seed-range (or
// job-slice) contiguity; on success a covers both shards' ranges.
func MergeArtifacts(a, b *ResultsArtifact) error { return results.Merge(a, b) }

// MergeShardFiles expands merge arguments (artifact files, globs, and
// directories holding *.json shards), loads every shard, and merges them
// in canonical range order; failures name the offending shard file.
func MergeShardFiles(args []string) (*ResultsArtifact, error) {
	shards, paths, err := results.ReadShards(args)
	if err != nil {
		return nil, err
	}
	return results.MergeShards(shards, paths)
}

// ShardRange partitions n seeds into `of` contiguous shards and returns
// the half-open index range of one shard; independently launched shard
// processes agree on the partition.
func ShardRange(n, shard, of int) (lo, hi int) { return results.ShardRange(n, shard, of) }

// ParseShardFlag parses a CLI -shard value of the form I/N ("" means
// unsharded and returns 0, 0).
func ParseShardFlag(s string) (shard, of int, err error) { return results.ParseShardFlag(s) }

// Streaming statistics (the memory backbone of fleet-scale scans).
type (
	// StatsSummary is a box-and-whiskers five-number summary plus mean
	// and standard deviation (paper footnote 2).
	StatsSummary = stats.Summary
	// StatsStream is a mergeable, serializable streaming accumulator:
	// exact-sum moments (order-independent merges, bit for bit) plus a
	// fixed-marker quantile estimator with an exact-mode fallback for
	// small samples, and a versioned binary/JSON codec for crossing
	// process boundaries.
	StatsStream = stats.Stream
)

// NewStatsStream returns a streaming accumulator over the quantile domain
// [lo, hi); see StatsStream.
func NewStatsStream(lo, hi float64) *StatsStream { return stats.NewStream(lo, hi) }

// Defense: the paper's vulnerability-adaptive mitigation implication.
type (
	// DefenseGuard is a controller-side preventive-refresh mechanism.
	DefenseGuard = defense.Guard
	// DefensePolicy yields per-channel guard thresholds.
	DefensePolicy = defense.Policy
	// UniformPolicy applies the worst channel's threshold everywhere.
	UniformPolicy = defense.Uniform
	// AdaptivePolicy applies per-channel thresholds.
	AdaptivePolicy = defense.Adaptive
)

// NewDefenseGuard wraps a device's activation path with the policy.
func NewDefenseGuard(d *Device, p DefensePolicy) *DefenseGuard { return defense.NewGuard(d, p) }

// SafetyFromHCFirst derives a guard threshold from a measured HCfirst.
func SafetyFromHCFirst(hcFirst int) int { return defense.SafetyFromHCFirst(hcFirst) }

// Supporting infrastructure.
type (
	// RetentionProfiler measures per-row retention times (the U-TRR side
	// channel).
	RetentionProfiler = retention.Profiler
	// UTRRExperiment is the raw U-TRR loop.
	UTRRExperiment = utrr.Experiment
	// ThermalController is the simulated PID temperature rig.
	ThermalController = thermal.Controller
	// ThermalPlant is the chip + pad + fan thermal model.
	ThermalPlant = thermal.Plant
	// BenderProgram is an executable DRAM command program.
	BenderProgram = bender.Program
	// BenderBuilder assembles timing-correct programs. Builders are
	// reusable via Reset; the *BenderProgram returned by Build aliases
	// the builder's buffers and is valid until the next Reset, emit or
	// Build on the same builder.
	BenderBuilder = bender.Builder
	// BenderRunner executes programs against a device. A runner owns its
	// result buffers: the Result returned by Run — including every Reads
	// entry — is valid only until the next Run on the same runner; copy
	// anything that must outlive it.
	BenderRunner = bender.Runner
	// RecoveredMap is a reverse-engineered physical row layout.
	RecoveredMap = mapping.RecoveredMap
)

// NewRetentionProfiler returns a profiler over the device.
func NewRetentionProfiler(d *Device) *RetentionProfiler { return retention.NewProfiler(d) }

// NewUTRR returns a U-TRR experiment over the device.
func NewUTRR(d *Device) *UTRRExperiment { return utrr.New(d) }

// NewThermalController wires the PID rig to a device, starting at the
// given lab ambient temperature.
func NewThermalController(d *Device, ambientC float64) *ThermalController {
	return thermal.NewController(d, thermal.NewPlant(ambientC))
}

// NewBenderBuilder returns a program builder for the device's timing and
// geometry.
func NewBenderBuilder(d *Device) *BenderBuilder {
	return bender.NewBuilder(d.Config().Timing, d.Geometry())
}

// NewBenderRunner returns a program runner with the loop fast path armed.
func NewBenderRunner(d *Device) *BenderRunner {
	return bender.NewRunner(d.Config().Timing)
}

// AssembleProgram parses the textual DRAM Bender program format.
func AssembleProgram(src string, g Geometry) (*BenderProgram, error) {
	return bender.Assemble(src, g)
}

// DisassembleProgram renders a program as text.
func DisassembleProgram(p *BenderProgram) string { return bender.Disassemble(p) }
